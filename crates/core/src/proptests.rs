//! Property-based tests over the SLICC hardware structures.

use crate::mask::CoreMask;
use crate::msv::MissShiftVector;
use crate::mtq::MissedTagQueue;
use crate::team::{TeamFormer, TeamKind};
use proptest::prelude::*;
use slicc_common::{ThreadId, TxnTypeId};

proptest! {
    #[test]
    fn msv_count_matches_window_contents(
        window in 1u32..64,
        outcomes in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut msv = MissShiftVector::new(window);
        for &miss in &outcomes {
            msv.record(miss);
        }
        let expected = outcomes
            .iter()
            .rev()
            .take(window as usize)
            .filter(|&&m| m)
            .count() as u32;
        prop_assert_eq!(msv.miss_count(), expected);
        prop_assert!(msv.recorded() <= window);
    }

    #[test]
    fn mtq_common_cores_is_intersection(
        depth in 1u32..8,
        entries in prop::collection::vec(any::<u16>(), 0..24),
    ) {
        let mut mtq = MissedTagQueue::new(depth);
        for &bits in &entries {
            mtq.push(CoreMask::from_bits(bits as u32));
        }
        let common = mtq.common_cores();
        if entries.len() < depth as usize {
            prop_assert!(common.is_empty(), "partial queue must report nothing");
        } else {
            let expected = entries
                .iter()
                .rev()
                .take(depth as usize)
                .fold(u32::MAX, |acc, &b| acc & b as u32);
            prop_assert_eq!(common.bits(), expected & 0xffff);
        }
    }

    #[test]
    fn core_mask_set_semantics(bits_a in any::<u16>(), bits_b in any::<u16>()) {
        let a = CoreMask::from_bits(bits_a as u32);
        let b = CoreMask::from_bits(bits_b as u32);
        prop_assert_eq!((a & b).bits(), (bits_a & bits_b) as u32);
        prop_assert_eq!((a | b).bits(), (bits_a | bits_b) as u32);
        prop_assert_eq!(a.len(), bits_a.count_ones());
        let rebuilt: CoreMask = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn teams_partition_threads(
        n_cores in 1usize..32,
        types in prop::collection::vec(0u16..5, 0..120),
    ) {
        let former = TeamFormer::new(n_cores);
        let threads: Vec<(ThreadId, TxnTypeId)> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| (ThreadId::new(i as u32), TxnTypeId::new(t)))
            .collect();
        let teams = former.form_teams(&threads);
        // Every thread appears exactly once.
        let mut seen: Vec<u32> = teams.iter().flat_map(|p| p.members.iter().map(|m| m.raw())).collect();
        seen.sort_unstable();
        let mut expected: Vec<u32> = (0..types.len() as u32).collect();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
        for plan in &teams {
            // Homogeneous type, bounded size, consistent classification.
            prop_assert!(plan.members.len() <= former.max_team_size());
            prop_assert!(!plan.members.is_empty());
            prop_assert_eq!(former.classify(plan.members.len()), plan.kind);
            for w in plan.members.windows(2) {
                prop_assert!(w[0] < w[1], "members stay in arrival order");
            }
        }
        // Teams come out oldest-first.
        for w in teams.windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
        }
        // Strays are genuinely small teams.
        for plan in &teams {
            if plan.kind == TeamKind::Stray {
                prop_assert!(2 * plan.members.len() < n_cores);
            }
        }
    }
}
