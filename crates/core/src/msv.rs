//! The miss-dilution tracker: a 100-bit hit/miss shift vector.
//!
//! §4.2.2: "The miss shift-vector (MSV) is a 100-bit FIFO shift vector
//! recording the hit/miss history for the last 100 cache accesses
//! (enabled when cache is filled-up). A logic-0 and logic-1 represent a
//! cache hit and miss, respectively. When the number of logic-1 bits
//! reaches a threshold (dilution_t), SLICC enables migration. SLICC
//! resets the MSV with every migration."

/// A fixed-window hit/miss history with an O(1) ones-count.
///
/// # Example
///
/// ```
/// use slicc_core::MissShiftVector;
///
/// let mut msv = MissShiftVector::new(4);
/// msv.record(true);
/// msv.record(false);
/// msv.record(true);
/// assert_eq!(msv.miss_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MissShiftVector {
    bits: Vec<bool>,
    head: usize,
    filled: usize,
    ones: u32,
}

impl MissShiftVector {
    /// Creates an empty vector covering the last `window` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u32) -> Self {
        assert!(window > 0, "MSV window must be positive");
        MissShiftVector { bits: vec![false; window as usize], head: 0, filled: 0, ones: 0 }
    }

    /// Shifts in one access outcome (`true` = miss).
    pub fn record(&mut self, miss: bool) {
        if self.filled == self.bits.len() {
            // Evict the oldest bit.
            if self.bits[self.head] {
                self.ones -= 1;
            }
        } else {
            self.filled += 1;
        }
        self.bits[self.head] = miss;
        if miss {
            self.ones += 1;
        }
        self.head = (self.head + 1) % self.bits.len();
    }

    /// Misses among the recorded window.
    pub fn miss_count(&self) -> u32 {
        self.ones
    }

    /// Whether dilution has reached `dilution_t` (migration enabled).
    ///
    /// A threshold of zero means migration is always enabled once the
    /// cache is full — the Figure 7 sweep configuration.
    pub fn is_diluted(&self, dilution_t: u32) -> bool {
        self.ones >= dilution_t
    }

    /// Window length.
    pub fn window(&self) -> u32 {
        self.bits.len() as u32
    }

    /// Accesses recorded so far, up to the window length.
    pub fn recorded(&self) -> u32 {
        self.filled as u32
    }

    /// Clears the history (done on every migration).
    pub fn reset(&mut self) {
        self.bits.fill(false);
        self.head = 0;
        self.filled = 0;
        self.ones = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_misses_in_window() {
        let mut msv = MissShiftVector::new(100);
        for i in 0..50 {
            msv.record(i % 5 == 0); // 10 misses
        }
        assert_eq!(msv.miss_count(), 10);
        assert_eq!(msv.recorded(), 50);
    }

    #[test]
    fn old_outcomes_age_out() {
        let mut msv = MissShiftVector::new(4);
        msv.record(true);
        msv.record(true);
        msv.record(false);
        msv.record(false);
        assert_eq!(msv.miss_count(), 2);
        // Two more hits push both misses out of the 4-wide window.
        msv.record(false);
        msv.record(false);
        assert_eq!(msv.miss_count(), 0);
    }

    #[test]
    fn dilution_threshold_semantics() {
        let mut msv = MissShiftVector::new(10);
        assert!(msv.is_diluted(0), "zero threshold is always diluted");
        assert!(!msv.is_diluted(1));
        msv.record(true);
        assert!(msv.is_diluted(1));
        assert!(!msv.is_diluted(2));
    }

    #[test]
    fn reset_clears_everything() {
        let mut msv = MissShiftVector::new(8);
        for _ in 0..8 {
            msv.record(true);
        }
        msv.reset();
        assert_eq!(msv.miss_count(), 0);
        assert_eq!(msv.recorded(), 0);
        // Still functional after reset.
        msv.record(true);
        assert_eq!(msv.miss_count(), 1);
    }

    #[test]
    fn all_misses_saturates_at_window() {
        let mut msv = MissShiftVector::new(16);
        for _ in 0..100 {
            msv.record(true);
        }
        assert_eq!(msv.miss_count(), 16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = MissShiftVector::new(0);
    }
}
