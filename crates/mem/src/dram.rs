//! An open-page DDR3 bank/row timing model.
//!
//! Table 2's memory system: DDR3 at 1.6 GT/s (800 MHz bus), 42 ns idle
//! latency, 2 channels × 1 rank × 8 banks, 8-byte bus, open-page policy,
//! and the timing set tCAS-10 / tRCD-10 / tRP-10 / tRAS-35 / tWR-15 …
//! The model tracks per-bank open rows and busy windows and classifies
//! each access as a row **hit** (open row), **closed** (bank precharged),
//! or **conflict** (different row open), charging the appropriate DDR3
//! timing converted into CPU cycles.

use slicc_common::{BlockAddr, Cycle};

/// DDR3 timing and geometry parameters, in *DRAM bus cycles* unless noted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramConfig {
    /// Independent channels (Table 2: 2).
    pub channels: u32,
    /// Banks per channel (Table 2: 8, single rank).
    pub banks_per_channel: u32,
    /// Row size in bytes (determines which blocks share a row buffer).
    pub row_bytes: u64,
    /// Column access strobe latency (tCAS).
    pub t_cas: u32,
    /// RAS-to-CAS delay (tRCD).
    pub t_rcd: u32,
    /// Row precharge time (tRP).
    pub t_rp: u32,
    /// Minimum row-active time (tRAS).
    pub t_ras: u32,
    /// Write recovery time (tWR).
    pub t_wr: u32,
    /// Bus transfer cycles for one cache block (64 B over an 8 B DDR bus:
    /// 8 beats = 4 bus cycles).
    pub t_burst: u32,
    /// CPU cycles per DRAM bus cycle (2.5 GHz core / 800 MHz bus =
    /// 3.125; the model rounds to fixed-point x1000).
    pub cpu_cycles_per_bus_cycle_x1000: u64,
}

impl slicc_common::StableHash for DramConfig {
    fn stable_hash(&self, h: &mut slicc_common::StableHasher) {
        self.channels.stable_hash(h);
        self.banks_per_channel.stable_hash(h);
        self.row_bytes.stable_hash(h);
        self.t_cas.stable_hash(h);
        self.t_rcd.stable_hash(h);
        self.t_rp.stable_hash(h);
        self.t_ras.stable_hash(h);
        self.t_wr.stable_hash(h);
        self.t_burst.stable_hash(h);
        self.cpu_cycles_per_bus_cycle_x1000.stable_hash(h);
    }
}

impl DramConfig {
    /// The paper's DDR3-1600 configuration (Table 2).
    pub fn paper_ddr3_1600() -> Self {
        DramConfig {
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 8 * 1024,
            t_cas: 10,
            t_rcd: 10,
            t_rp: 10,
            t_ras: 35,
            t_wr: 15,
            t_burst: 4,
            cpu_cycles_per_bus_cycle_x1000: 3125, // 2.5 GHz / 800 MHz
        }
    }

    /// Converts a bus-cycle count into CPU cycles (rounding up).
    pub fn to_cpu_cycles(&self, bus_cycles: u32) -> Cycle {
        (bus_cycles as u64 * self.cpu_cycles_per_bus_cycle_x1000).div_ceil(1000)
    }

    /// Total banks across all channels.
    pub fn total_banks(&self) -> usize {
        (self.channels * self.banks_per_channel) as usize
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::paper_ddr3_1600()
    }
}

/// Row-buffer outcome counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Accesses served from an open row.
    pub row_hits: u64,
    /// Accesses to a precharged bank.
    pub row_closed: u64,
    /// Accesses that had to close a different open row first.
    pub row_conflicts: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write (write-back) accesses.
    pub writes: u64,
}

// Per-channel counters fold together via the workspace-wide `Merge` trait.
slicc_common::impl_merge_counters!(DramStats { row_hits, row_closed, row_conflicts, reads, writes });

impl DramStats {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.row_hits + self.row_closed + self.row_conflicts
    }

    /// Fraction of accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.row_hits as f64 / t as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Bank {
    open_row: Option<u64>,
    /// CPU-cycle time until which the bank is busy.
    busy_until: Cycle,
    /// CPU-cycle time at which the current row was activated (for tRAS).
    activated_at: Cycle,
}

/// The DRAM device model.
///
/// [`Dram::access`] maps a block to its channel/bank/row, applies
/// open-page timing, and returns the CPU-cycle completion time.
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle DRAM with all banks precharged.
    pub fn new(config: DramConfig) -> Self {
        let banks = vec![Bank { open_row: None, busy_until: 0, activated_at: 0 }; config.total_banks()];
        Dram { config, banks, stats: DramStats::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Zeroes the statistics (bank state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Maps a block to `(bank_index, row)`.
    fn map(&self, block: BlockAddr) -> (usize, u64) {
        let blocks_per_row = self.config.row_bytes / 64;
        let channel = (block.raw() % self.config.channels as u64) as usize;
        let row_global = block.raw() / blocks_per_row;
        let bank_in_channel = (row_global % self.config.banks_per_channel as u64) as usize;
        let row = row_global / self.config.banks_per_channel as u64;
        (channel * self.config.banks_per_channel as usize + bank_in_channel, row)
    }

    /// Performs one block access starting no earlier than `now` (CPU
    /// cycles) and returns the completion time (CPU cycles).
    pub fn access(&mut self, block: BlockAddr, now: Cycle, is_write: bool) -> Cycle {
        let (bank_idx, row) = self.map(block);
        let cfg = self.config;
        let bank = &mut self.banks[bank_idx];

        // The command cannot start before the bank is free.
        let start = now.max(bank.busy_until);

        let (latency_bus, activated) = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                (cfg.t_cas + cfg.t_burst, bank.activated_at)
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                // Must satisfy tRAS for the currently open row before
                // precharging it.
                (cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_burst, start)
            }
            None => {
                self.stats.row_closed += 1;
                (cfg.t_rcd + cfg.t_cas + cfg.t_burst, start)
            }
        };
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }

        // Enforce tRAS on conflicts: the previous activation must have
        // been open at least tRAS before the precharge implied above.
        let t_ras_cpu = cfg.to_cpu_cycles(cfg.t_ras);
        let start = if matches!(bank.open_row, Some(r) if r != row) {
            start.max(bank.activated_at + t_ras_cpu)
        } else {
            start
        };

        let done = start + cfg.to_cpu_cycles(latency_bus);
        // Writes occupy the bank longer (write recovery).
        let busy_extra = if is_write { cfg.to_cpu_cycles(cfg.t_wr) } else { 0 };
        bank.open_row = Some(row);
        bank.activated_at = activated;
        bank.busy_until = done + busy_extra;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::paper_ddr3_1600())
    }

    #[test]
    fn idle_read_latency_is_about_42ns() {
        let mut d = dram();
        // Closed bank: tRCD + tCAS + burst = 24 bus cycles = 75 CPU
        // cycles = 30 ns; with queueing this approximates the paper's
        // 42 ns average loaded latency.
        let done = d.access(BlockAddr::new(0), 0, false);
        assert_eq!(done, DramConfig::paper_ddr3_1600().to_cpu_cycles(10 + 10 + 4));
        assert_eq!(d.stats().row_closed, 1);
    }

    #[test]
    fn row_hit_is_faster_than_closed_and_conflict() {
        let cfg = DramConfig::paper_ddr3_1600();
        let mut d = dram();
        let b = BlockAddr::new(0);
        let t1 = d.access(b, 0, false); // closed
        let t2 = d.access(b.offset(cfg.channels as u64), t1, false); // same row (stride skips channel bit)
        let hit_latency = t2 - t1;
        assert!(hit_latency < t1, "row hit {hit_latency} should beat closed {t1}");
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_is_slowest() {
        let cfg = DramConfig::paper_ddr3_1600();
        let mut d = dram();
        let blocks_per_row = cfg.row_bytes / 64;
        let b1 = BlockAddr::new(0);
        // Same bank, different row: jump banks*rows worth of blocks.
        let b2 = BlockAddr::new(blocks_per_row * cfg.banks_per_channel as u64 * cfg.channels as u64);
        assert_eq!(d.map(b1).0, d.map(b2).0, "must map to same bank");
        assert_ne!(d.map(b1).1, d.map(b2).1, "must map to different rows");
        let t1 = d.access(b1, 0, false);
        let start2 = t1 + 10_000; // long idle: tRAS satisfied
        let t2 = d.access(b2, start2, false) - start2;
        let closed = t1;
        assert!(t2 > closed, "conflict {t2} should exceed closed {closed}");
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn bank_busy_serializes_requests() {
        let mut d = dram();
        let b = BlockAddr::new(0);
        let t1 = d.access(b, 0, false);
        // Second access issued at time 0 must wait for the first.
        let t2 = d.access(b, 0, false);
        assert!(t2 > t1);
    }

    #[test]
    fn different_channels_do_not_serialize() {
        let mut d = dram();
        let b0 = BlockAddr::new(0); // channel 0
        let b1 = BlockAddr::new(1); // channel 1
        let t0 = d.access(b0, 0, false);
        let t1 = d.access(b1, 0, false);
        // Both start at 0 on independent banks: same closed-bank latency.
        assert_eq!(t0, t1);
    }

    #[test]
    fn writes_occupy_bank_longer() {
        let mut d1 = dram();
        let mut d2 = dram();
        let b = BlockAddr::new(0);
        let w = d1.access(b, 0, true);
        let r_after_w = d1.access(b, w, false);
        let r = d2.access(b, 0, false);
        let r_after_r = d2.access(b, r, false);
        assert!(r_after_w - w > r_after_r - r, "write recovery must delay the next access");
        assert_eq!(d1.stats().writes, 1);
        assert_eq!(d1.stats().reads, 1);
    }

    #[test]
    fn completion_never_precedes_issue() {
        use slicc_common::SplitMix64;
        let mut d = dram();
        let mut rng = SplitMix64::new(1);
        let mut now = 0;
        for _ in 0..1000 {
            let b = BlockAddr::new(rng.next_below(1 << 24));
            let done = d.access(b, now, rng.chance(0.45));
            assert!(done > now);
            now += rng.next_below(20);
        }
        assert_eq!(d.stats().total(), 1000);
    }

    #[test]
    fn row_hit_rate_metric() {
        let mut d = dram();
        let b = BlockAddr::new(0);
        let mut now = 0;
        for _ in 0..10 {
            now = d.access(b, now, false);
        }
        // 1 closed + 9 hits.
        assert!((d.stats().row_hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn cpu_cycle_conversion_rounds_up() {
        let cfg = DramConfig::paper_ddr3_1600();
        assert_eq!(cfg.to_cpu_cycles(1), 4); // 3.125 -> 4
        assert_eq!(cfg.to_cpu_cycles(8), 25); // 25.0 exactly
        assert_eq!(cfg.total_banks(), 16);
    }

    #[test]
    fn completion_monotone_per_bank_over_random_sequences() {
        // Property: for any access sequence, a bank's completions are
        // strictly increasing in issue order. Checked over deterministic
        // random sequences (the external proptest crate is kept out of
        // the offline build, DESIGN.md §5).
        use slicc_common::SplitMix64;
        let mut rng = SplitMix64::new(0xD12A);
        for _ in 0..64 {
            let mut d = Dram::new(DramConfig::paper_ddr3_1600());
            let mut last_done_per_bank = std::collections::HashMap::new();
            let mut now = 0u64;
            let len = 1 + rng.next_below(199) as usize;
            for _ in 0..len {
                let b = BlockAddr::new(rng.next_below(1 << 20));
                let w = rng.chance(0.5);
                let bank = d.map(b).0;
                let done = d.access(b, now, w);
                assert!(done > now);
                if let Some(&prev) = last_done_per_bank.get(&bank) {
                    assert!(done > prev, "bank {bank} went backwards");
                }
                last_done_per_bank.insert(bank, done);
                now += 3;
            }
        }
    }

    #[test]
    fn reset_stats_only_clears_counters() {
        let mut d = dram();
        d.access(BlockAddr::new(0), 0, false);
        d.reset_stats();
        assert_eq!(d.stats().total(), 0);
        // Row remains open: next access is a row hit.
        d.access(BlockAddr::new(0), 1000, false);
        assert_eq!(d.stats().row_hits, 1);
    }
}
