//! Memory hierarchy below the private L1s: shared NUCA L2 and DRAM.
//!
//! Table 2 of the paper specifies a 16-bank shared NUCA L2 (1 MiB per
//! core, 16-way, 16-cycle hit latency, MESI coherence for the L1-Ds) over
//! a DDR3-1600 memory system. This crate provides both:
//!
//! - [`L2Nuca`]: the banked shared L2 with an embedded directory that
//!   keeps the private L1-Ds coherent (invalidations on remote stores,
//!   downgrades on remote reads of dirty data, back-invalidation on L2
//!   eviction) — see [`l2`];
//! - [`Dram`]: an open-page DDR3 bank/row timing model with the paper's
//!   DDR3-1600 parameters — see [`dram`].
//!
//! # Example
//!
//! ```
//! use slicc_mem::{Dram, DramConfig};
//! use slicc_common::BlockAddr;
//!
//! let mut dram = Dram::new(DramConfig::paper_ddr3_1600());
//! let done = dram.access(BlockAddr::new(0x100), 0, false);
//! assert!(done > 0); // off-chip accesses take real time
//! ```

pub mod dram;
pub mod l2;

pub use dram::{Dram, DramConfig, DramStats};
pub use l2::{BackInvalidate, L2AccessKind, L2Nuca, L2Response, L2Stats};
