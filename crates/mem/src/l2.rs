//! The shared NUCA L2 with its coherence directory.
//!
//! Table 2: a shared L2 of 1 MiB per core (16 MiB total for 16 cores),
//! 16-way, 64 B blocks, 16 banks, 16-cycle hit latency, with MESI
//! coherence for the L1-Ds. This module models the L2 as one logical
//! set-associative cache whose blocks are address-interleaved across the
//! banks (bank = block mod 16), plus a directory that tracks which private
//! L1s hold each block:
//!
//! - a **store** to a block shared by other L1-Ds invalidates those copies
//!   (the §5.5 migration penalty: writes on core B to blocks fetched on
//!   core A "lead to invalidations that would not have occurred");
//! - a **load** of a block held dirty elsewhere downgrades the owner;
//! - an **L2 eviction** back-invalidates every L1 copy (inclusive L2).
//!
//! The L2 is a *functional* model; the simulator charges bank-distance and
//! hit/miss latencies using [`slicc_noc`]'s torus and [`crate::Dram`].

use slicc_cache::{AccessKind, Cache, PolicyKind};
use slicc_common::{BlockAddr, CacheGeometry, CoreId, CoreMask, Cycle, FastHashMap};

/// How an L1 request accesses the L2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L2AccessKind {
    /// Instruction fetch (read-only; many L1-Is may share the block).
    IFetch,
    /// Data load.
    DataRead,
    /// Data store (requires exclusivity among L1-Ds).
    DataWrite,
}

impl L2AccessKind {
    /// Whether this request touches the data directory.
    pub const fn is_data(self) -> bool {
        !matches!(self, L2AccessKind::IFetch)
    }
}

/// Directory entry: which L1s hold the block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct DirEntry {
    /// Cores whose L1-I holds the block.
    i_sharers: CoreMask,
    /// Cores whose L1-D holds the block.
    d_sharers: CoreMask,
    /// Core whose L1-D holds the block modified, if any.
    dirty_owner: Option<u16>,
}

impl DirEntry {
    fn is_empty(&self) -> bool {
        self.i_sharers.is_empty() && self.d_sharers.is_empty()
    }
}

/// Coherence actions the requesting side must carry out, returned from
/// [`L2Nuca::access`].
///
/// Sharer sets are [`CoreMask`]s and a fill evicts at most one victim, so
/// the whole response is a few machine words passed by value — the L2
/// access path allocates nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L2Response {
    /// Whether the block was present in the L2 (else it was fetched from
    /// memory and filled).
    pub hit: bool,
    /// L1-Ds (other cores) that must invalidate their copy because of
    /// this store.
    pub invalidate_data: CoreMask,
    /// L1-D holding the block dirty that must downgrade (write back) so
    /// this read can proceed.
    pub downgrade: Option<CoreId>,
    /// The block evicted from the L2 by this fill, if any, with the L1-I
    /// and L1-D sharer sets that must be back-invalidated (inclusion).
    pub back_invalidate: Option<BackInvalidate>,
    /// Whether the L2 victim (if any) was dirty and wrote back to memory.
    pub dirty_writeback: bool,
}

/// An inclusive-L2 back-invalidation order for one evicted block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackInvalidate {
    /// The evicted block.
    pub block: BlockAddr,
    /// Cores whose L1-I held it.
    pub i_sharers: CoreMask,
    /// Cores whose L1-D held it.
    pub d_sharers: CoreMask,
}

/// L2-side counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Requests that hit in the L2.
    pub hits: u64,
    /// Requests that missed to memory.
    pub misses: u64,
    /// Invalidation messages sent to L1-Ds on stores.
    pub store_invalidations: u64,
    /// Downgrades of dirty L1-D copies on remote reads.
    pub downgrades: u64,
    /// L1 copies killed by inclusive L2 evictions.
    pub back_invalidations: u64,
}

// Per-bank counters fold together via the workspace-wide `Merge` trait.
slicc_common::impl_merge_counters!(L2Stats {
    hits,
    misses,
    store_invalidations,
    downgrades,
    back_invalidations,
});

/// The shared, banked, inclusive L2 with directory.
///
/// # Example
///
/// ```
/// use slicc_mem::{L2AccessKind, L2Nuca};
/// use slicc_common::{BlockAddr, CoreId};
///
/// let mut l2 = L2Nuca::paper_16core(1);
/// let b = BlockAddr::new(0x99);
/// let r0 = l2.access(CoreId::new(0), b, L2AccessKind::DataWrite);
/// assert!(!r0.hit); // cold
/// // Another core stores to the same block: core 0 must invalidate.
/// let r1 = l2.access(CoreId::new(1), b, L2AccessKind::DataWrite);
/// assert!(r1.hit);
/// assert!(r1.invalidate_data.contains(CoreId::new(0)));
/// assert_eq!(r1.invalidate_data.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct L2Nuca {
    cache: Cache,
    dir: FastHashMap<BlockAddr, DirEntry>,
    num_banks: usize,
    hit_latency: Cycle,
    stats: L2Stats,
}

impl L2Nuca {
    /// Creates an L2 with explicit shape.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` is zero or the geometry is invalid.
    pub fn new(geom: CacheGeometry, num_banks: usize, hit_latency: Cycle, seed: u64) -> Self {
        assert!(num_banks > 0, "L2 must have at least one bank");
        L2Nuca {
            cache: Cache::new(geom, PolicyKind::Lru, seed),
            dir: FastHashMap::default(),
            num_banks,
            hit_latency,
            stats: L2Stats::default(),
        }
    }

    /// The paper's configuration: 16 MiB (1 MiB x 16 cores), 16-way, 64 B
    /// blocks, 16 banks, 16-cycle hit latency.
    pub fn paper_16core(seed: u64) -> Self {
        L2Nuca::new(CacheGeometry::new(16 * 1024 * 1024, 16, 64), 16, 16, seed)
    }

    /// The bank holding `block` (address-interleaved).
    pub fn bank_of(&self, block: BlockAddr) -> usize {
        (block.raw() % self.num_banks as u64) as usize
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }

    /// Bank hit latency in cycles (Table 2: 16).
    pub fn hit_latency(&self) -> Cycle {
        self.hit_latency
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &L2Stats {
        &self.stats
    }

    /// Zeroes the counters (contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats = L2Stats::default();
        self.cache.reset_stats();
    }

    /// Whether the L2 currently holds `block`.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.cache.contains(block)
    }

    /// Handles an L1 miss request from `core` for `block`.
    pub fn access(&mut self, core: CoreId, block: BlockAddr, kind: L2AccessKind) -> L2Response {
        let mut resp = L2Response::default();

        // Storage lookup (fills on miss; inclusive).
        let result = self.cache.access(block, AccessKind::Read);
        resp.hit = result.is_hit();
        if resp.hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        if let Some(evicted) = result.evicted() {
            resp.dirty_writeback = evicted.dirty;
            if let Some(entry) = self.dir.remove(&evicted.block) {
                self.stats.back_invalidations +=
                    (entry.i_sharers.len() + entry.d_sharers.len()) as u64;
                resp.back_invalidate = Some(BackInvalidate {
                    block: evicted.block,
                    i_sharers: entry.i_sharers,
                    d_sharers: entry.d_sharers,
                });
            }
        }

        // Directory transaction.
        let entry = self.dir.entry(block).or_default();
        match kind {
            L2AccessKind::IFetch => {
                entry.i_sharers.insert(core);
            }
            L2AccessKind::DataRead => {
                if let Some(owner) = entry.dirty_owner {
                    if owner as usize != core.index() {
                        resp.downgrade = Some(CoreId::new(owner));
                        entry.dirty_owner = None;
                        self.stats.downgrades += 1;
                    }
                }
                entry.d_sharers.insert(core);
            }
            L2AccessKind::DataWrite => {
                let others = entry.d_sharers.without(core);
                if !others.is_empty() {
                    resp.invalidate_data = others;
                    self.stats.store_invalidations += others.len() as u64;
                }
                entry.d_sharers = CoreMask::empty();
                entry.d_sharers.insert(core);
                entry.dirty_owner = Some(core.raw());
            }
        }
        resp
    }

    /// Notifies the directory that `core`'s L1 evicted or invalidated its
    /// copy of `block`. `was_data` selects the L1-D vs L1-I sharer set.
    pub fn on_l1_evict(&mut self, core: CoreId, block: BlockAddr, was_data: bool, dirty: bool) {
        if let Some(entry) = self.dir.get_mut(&block) {
            if was_data {
                entry.d_sharers.remove(core);
                if entry.dirty_owner == Some(core.raw()) {
                    entry.dirty_owner = None;
                }
                if dirty {
                    // A dirty L1 eviction writes back into the L2 copy.
                    self.cache.mark_dirty(block);
                }
            } else {
                entry.i_sharers.remove(core);
            }
            if entry.is_empty() {
                self.dir.remove(&block);
            }
        }
    }

    /// The cores whose L1-D currently shares `block` (diagnostics).
    pub fn data_sharers(&self, block: BlockAddr) -> Vec<CoreId> {
        self.dir.get(&block).map(|e| e.d_sharers.iter().collect()).unwrap_or_default()
    }

    /// The cores whose L1-I currently shares `block` (diagnostics).
    pub fn instruction_sharers(&self, block: BlockAddr) -> Vec<CoreId> {
        self.dir.get(&block).map(|e| e.i_sharers.iter().collect()).unwrap_or_default()
    }

    /// Number of directory entries (blocks with at least one L1 sharer).
    pub fn directory_entries(&self) -> usize {
        self.dir.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_l2() -> L2Nuca {
        // 8 KiB, 2-way, 64 B: 64 sets... 8192/(2*64) = 64 sets, 128 blocks.
        L2Nuca::new(CacheGeometry::new(8 * 1024, 2, 64), 4, 16, 1)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut l2 = small_l2();
        let b = BlockAddr::new(5);
        assert!(!l2.access(CoreId::new(0), b, L2AccessKind::IFetch).hit);
        assert!(l2.access(CoreId::new(1), b, L2AccessKind::IFetch).hit);
        assert_eq!(l2.stats().hits, 1);
        assert_eq!(l2.stats().misses, 1);
    }

    #[test]
    fn ifetch_sharers_accumulate_without_invalidation() {
        let mut l2 = small_l2();
        let b = BlockAddr::new(5);
        for c in 0..4u16 {
            let r = l2.access(CoreId::new(c), b, L2AccessKind::IFetch);
            assert!(r.invalidate_data.is_empty());
            assert!(r.downgrade.is_none());
        }
        assert_eq!(l2.instruction_sharers(b).len(), 4);
    }

    #[test]
    fn store_invalidates_other_data_sharers() {
        let mut l2 = small_l2();
        let b = BlockAddr::new(5);
        l2.access(CoreId::new(0), b, L2AccessKind::DataRead);
        l2.access(CoreId::new(1), b, L2AccessKind::DataRead);
        let r = l2.access(CoreId::new(2), b, L2AccessKind::DataWrite);
        let inv: Vec<_> = r.invalidate_data.iter().collect();
        assert_eq!(inv, vec![CoreId::new(0), CoreId::new(1)]);
        assert_eq!(l2.data_sharers(b), vec![CoreId::new(2)]);
        assert_eq!(l2.stats().store_invalidations, 2);
    }

    #[test]
    fn store_by_sole_sharer_invalidates_nobody() {
        let mut l2 = small_l2();
        let b = BlockAddr::new(5);
        l2.access(CoreId::new(0), b, L2AccessKind::DataRead);
        let r = l2.access(CoreId::new(0), b, L2AccessKind::DataWrite);
        assert!(r.invalidate_data.is_empty());
    }

    #[test]
    fn read_of_dirty_block_downgrades_owner() {
        let mut l2 = small_l2();
        let b = BlockAddr::new(5);
        l2.access(CoreId::new(0), b, L2AccessKind::DataWrite);
        let r = l2.access(CoreId::new(1), b, L2AccessKind::DataRead);
        assert_eq!(r.downgrade, Some(CoreId::new(0)));
        assert_eq!(l2.stats().downgrades, 1);
        // Owner cleared: a further read downgrades nobody.
        let r2 = l2.access(CoreId::new(2), b, L2AccessKind::DataRead);
        assert!(r2.downgrade.is_none());
    }

    #[test]
    fn owner_rereading_own_dirty_block_is_not_downgraded() {
        let mut l2 = small_l2();
        let b = BlockAddr::new(5);
        l2.access(CoreId::new(0), b, L2AccessKind::DataWrite);
        let r = l2.access(CoreId::new(0), b, L2AccessKind::DataRead);
        assert!(r.downgrade.is_none());
    }

    #[test]
    fn l2_eviction_back_invalidates_l1_sharers() {
        let mut l2 = small_l2();
        // Fill one set (2 ways) with sharers, then overflow it.
        // Blocks mapping to set 0: multiples of 64.
        let (b0, b1, b2) = (BlockAddr::new(0), BlockAddr::new(64), BlockAddr::new(128));
        l2.access(CoreId::new(3), b0, L2AccessKind::IFetch);
        l2.access(CoreId::new(4), b0, L2AccessKind::DataRead);
        l2.access(CoreId::new(5), b1, L2AccessKind::DataRead);
        let r = l2.access(CoreId::new(6), b2, L2AccessKind::DataRead);
        let bi = r.back_invalidate.expect("fill must evict the shared block");
        assert_eq!(bi.block, b0);
        assert_eq!(bi.i_sharers.iter().collect::<Vec<_>>(), vec![CoreId::new(3)]);
        assert_eq!(bi.d_sharers.iter().collect::<Vec<_>>(), vec![CoreId::new(4)]);
        assert_eq!(l2.stats().back_invalidations, 2);
        // Directory entry gone.
        assert!(l2.data_sharers(b0).is_empty());
    }

    #[test]
    fn l1_evict_notification_clears_sharer() {
        let mut l2 = small_l2();
        let b = BlockAddr::new(5);
        l2.access(CoreId::new(0), b, L2AccessKind::DataRead);
        l2.access(CoreId::new(1), b, L2AccessKind::DataRead);
        l2.on_l1_evict(CoreId::new(0), b, true, false);
        assert_eq!(l2.data_sharers(b), vec![CoreId::new(1)]);
        l2.on_l1_evict(CoreId::new(1), b, true, false);
        assert_eq!(l2.directory_entries(), 0);
    }

    #[test]
    fn dirty_owner_eviction_clears_ownership() {
        let mut l2 = small_l2();
        let b = BlockAddr::new(5);
        l2.access(CoreId::new(0), b, L2AccessKind::DataWrite);
        l2.on_l1_evict(CoreId::new(0), b, true, true);
        // A later read must not downgrade the departed owner.
        let r = l2.access(CoreId::new(1), b, L2AccessKind::DataRead);
        assert!(r.downgrade.is_none());
    }

    #[test]
    fn bank_interleaving() {
        let l2 = small_l2();
        assert_eq!(l2.bank_of(BlockAddr::new(0)), 0);
        assert_eq!(l2.bank_of(BlockAddr::new(5)), 1);
        assert_eq!(l2.bank_of(BlockAddr::new(7)), 3);
        assert_eq!(l2.num_banks(), 4);
    }

    #[test]
    fn paper_config_shape() {
        let l2 = L2Nuca::paper_16core(0);
        assert_eq!(l2.num_banks(), 16);
        assert_eq!(l2.hit_latency(), 16);
    }

    #[test]
    fn instruction_and_data_sharers_are_independent() {
        let mut l2 = small_l2();
        let b = BlockAddr::new(9);
        l2.access(CoreId::new(0), b, L2AccessKind::IFetch);
        l2.access(CoreId::new(0), b, L2AccessKind::DataRead);
        // A store invalidates the data copy but not the instruction copy.
        let r = l2.access(CoreId::new(1), b, L2AccessKind::DataWrite);
        assert_eq!(r.invalidate_data.iter().collect::<Vec<_>>(), vec![CoreId::new(0)]);
        assert_eq!(l2.instruction_sharers(b), vec![CoreId::new(0)]);
    }
}

#[cfg(test)]
mod protocol_scenarios {
    use super::*;
    use slicc_common::CacheGeometry;

    fn l2() -> L2Nuca {
        L2Nuca::new(CacheGeometry::new(64 * 1024, 8, 64), 4, 16, 1)
    }

    /// A full migration-shaped protocol walk: the §5.5 three-scenario
    /// story at directory level.
    #[test]
    fn migration_read_write_return_cycle() {
        let mut l2 = l2();
        let b = BlockAddr::new(0x40);
        let (a, c) = (CoreId::new(0), CoreId::new(1));

        // Thread writes b on core A.
        l2.access(a, b, L2AccessKind::DataWrite);
        // (1) It migrates to core B and reads the data it fetched on A:
        // the read must downgrade A's dirty copy.
        let r = l2.access(c, b, L2AccessKind::DataRead);
        assert_eq!(r.downgrade, Some(a));
        // (2) It writes on B: A's (clean) copy must be invalidated.
        let r = l2.access(c, b, L2AccessKind::DataWrite);
        assert_eq!(r.invalidate_data.iter().collect::<Vec<_>>(), vec![a]);
        // (3) It returns to A and reads again: B now holds it dirty.
        let r = l2.access(a, b, L2AccessKind::DataRead);
        assert_eq!(r.downgrade, Some(c));
        // Directory ends with both as clean sharers.
        let mut sharers = l2.data_sharers(b);
        sharers.sort();
        assert_eq!(sharers, vec![a, c]);
    }

    #[test]
    fn write_after_many_readers_invalidates_all() {
        let mut l2 = l2();
        let b = BlockAddr::new(0x80);
        for i in 0..8u16 {
            l2.access(CoreId::new(i), b, L2AccessKind::DataRead);
        }
        let writer = CoreId::new(9);
        let r = l2.access(writer, b, L2AccessKind::DataWrite);
        assert_eq!(r.invalidate_data.len(), 8);
        assert_eq!(l2.data_sharers(b), vec![writer]);
        // A second write by the same core is silent.
        let r = l2.access(writer, b, L2AccessKind::DataWrite);
        assert!(r.invalidate_data.is_empty());
    }

    #[test]
    fn instruction_copies_survive_data_writes_until_l2_eviction() {
        let mut l2 = l2();
        let b = BlockAddr::new(0xc0);
        l2.access(CoreId::new(2), b, L2AccessKind::IFetch);
        l2.access(CoreId::new(3), b, L2AccessKind::DataWrite);
        assert_eq!(l2.instruction_sharers(b), vec![CoreId::new(2)]);
        // Fill the set until b is evicted: back-invalidation must list
        // the L1-I copy.
        let sets = 64 * 1024 / (8 * 64);
        let mut back = None;
        for k in 1..=16u64 {
            let other = BlockAddr::new(0xc0 + k * sets as u64);
            let r = l2.access(CoreId::new(4), other, L2AccessKind::DataRead);
            if let Some(bi) = r.back_invalidate.filter(|bi| bi.block == b) {
                back = Some(bi);
                break;
            }
        }
        let bi = back.expect("b must eventually be evicted from its set");
        assert_eq!(bi.i_sharers.iter().collect::<Vec<_>>(), vec![CoreId::new(2)]);
        assert_eq!(bi.d_sharers.iter().collect::<Vec<_>>(), vec![CoreId::new(3)]);
    }
}
