/root/repo/target/release/examples/quickstart-559bc0b02ac014ee.d: crates/sim/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-559bc0b02ac014ee: crates/sim/../../examples/quickstart.rs

crates/sim/../../examples/quickstart.rs:
