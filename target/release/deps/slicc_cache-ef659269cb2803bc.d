/root/repo/target/release/deps/slicc_cache-ef659269cb2803bc.d: crates/cache/src/lib.rs crates/cache/src/bloom.rs crates/cache/src/cache.rs crates/cache/src/classify.rs crates/cache/src/lru_list.rs crates/cache/src/mshr.rs crates/cache/src/pif.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libslicc_cache-ef659269cb2803bc.rlib: crates/cache/src/lib.rs crates/cache/src/bloom.rs crates/cache/src/cache.rs crates/cache/src/classify.rs crates/cache/src/lru_list.rs crates/cache/src/mshr.rs crates/cache/src/pif.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libslicc_cache-ef659269cb2803bc.rmeta: crates/cache/src/lib.rs crates/cache/src/bloom.rs crates/cache/src/cache.rs crates/cache/src/classify.rs crates/cache/src/lru_list.rs crates/cache/src/mshr.rs crates/cache/src/pif.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/bloom.rs:
crates/cache/src/cache.rs:
crates/cache/src/classify.rs:
crates/cache/src/lru_list.rs:
crates/cache/src/mshr.rs:
crates/cache/src/pif.rs:
crates/cache/src/policy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/stats.rs:
