/root/repo/target/release/deps/slicc_trace-bacc7ededaf9ebf8.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/builder.rs crates/trace/src/codec.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/thread_gen.rs crates/trace/src/validate.rs crates/trace/src/workload.rs

/root/repo/target/release/deps/libslicc_trace-bacc7ededaf9ebf8.rlib: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/builder.rs crates/trace/src/codec.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/thread_gen.rs crates/trace/src/validate.rs crates/trace/src/workload.rs

/root/repo/target/release/deps/libslicc_trace-bacc7ededaf9ebf8.rmeta: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/builder.rs crates/trace/src/codec.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/thread_gen.rs crates/trace/src/validate.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/builder.rs:
crates/trace/src/codec.rs:
crates/trace/src/segment.rs:
crates/trace/src/stats.rs:
crates/trace/src/thread_gen.rs:
crates/trace/src/validate.rs:
crates/trace/src/workload.rs:
