/root/repo/target/release/deps/figures-0fac9509c5321785.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-0fac9509c5321785: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
