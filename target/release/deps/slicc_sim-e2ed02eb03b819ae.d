/root/repo/target/release/deps/slicc_sim-e2ed02eb03b819ae.d: crates/sim/src/lib.rs crates/sim/src/checkpoint.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/runner.rs crates/sim/src/system.rs

/root/repo/target/release/deps/libslicc_sim-e2ed02eb03b819ae.rlib: crates/sim/src/lib.rs crates/sim/src/checkpoint.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/runner.rs crates/sim/src/system.rs

/root/repo/target/release/deps/libslicc_sim-e2ed02eb03b819ae.rmeta: crates/sim/src/lib.rs crates/sim/src/checkpoint.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/runner.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/checkpoint.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
crates/sim/src/runner.rs:
crates/sim/src/system.rs:
