/root/repo/target/release/deps/simulator-7718d7640522e284.d: crates/bench/benches/simulator.rs

/root/repo/target/release/deps/simulator-7718d7640522e284: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
