/root/repo/target/release/deps/structures-cba488840cb59e66.d: crates/bench/benches/structures.rs

/root/repo/target/release/deps/structures-cba488840cb59e66: crates/bench/benches/structures.rs

crates/bench/benches/structures.rs:
