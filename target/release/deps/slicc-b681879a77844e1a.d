/root/repo/target/release/deps/slicc-b681879a77844e1a.d: crates/sim/src/bin/slicc.rs

/root/repo/target/release/deps/slicc-b681879a77844e1a: crates/sim/src/bin/slicc.rs

crates/sim/src/bin/slicc.rs:
