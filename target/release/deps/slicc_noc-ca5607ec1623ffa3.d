/root/repo/target/release/deps/slicc_noc-ca5607ec1623ffa3.d: crates/noc/src/lib.rs crates/noc/src/stats.rs crates/noc/src/torus.rs

/root/repo/target/release/deps/libslicc_noc-ca5607ec1623ffa3.rlib: crates/noc/src/lib.rs crates/noc/src/stats.rs crates/noc/src/torus.rs

/root/repo/target/release/deps/libslicc_noc-ca5607ec1623ffa3.rmeta: crates/noc/src/lib.rs crates/noc/src/stats.rs crates/noc/src/torus.rs

crates/noc/src/lib.rs:
crates/noc/src/stats.rs:
crates/noc/src/torus.rs:
