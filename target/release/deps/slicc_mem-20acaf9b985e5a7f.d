/root/repo/target/release/deps/slicc_mem-20acaf9b985e5a7f.d: crates/mem/src/lib.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

/root/repo/target/release/deps/libslicc_mem-20acaf9b985e5a7f.rlib: crates/mem/src/lib.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

/root/repo/target/release/deps/libslicc_mem-20acaf9b985e5a7f.rmeta: crates/mem/src/lib.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

crates/mem/src/lib.rs:
crates/mem/src/dram.rs:
crates/mem/src/l2.rs:
