/root/repo/target/release/deps/slicc_cpu-611bed43df0ec743.d: crates/cpu/src/lib.rs crates/cpu/src/migration.rs crates/cpu/src/timing.rs crates/cpu/src/tlb.rs

/root/repo/target/release/deps/libslicc_cpu-611bed43df0ec743.rlib: crates/cpu/src/lib.rs crates/cpu/src/migration.rs crates/cpu/src/timing.rs crates/cpu/src/tlb.rs

/root/repo/target/release/deps/libslicc_cpu-611bed43df0ec743.rmeta: crates/cpu/src/lib.rs crates/cpu/src/migration.rs crates/cpu/src/timing.rs crates/cpu/src/tlb.rs

crates/cpu/src/lib.rs:
crates/cpu/src/migration.rs:
crates/cpu/src/timing.rs:
crates/cpu/src/tlb.rs:
