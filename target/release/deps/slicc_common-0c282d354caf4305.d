/root/repo/target/release/deps/slicc_common-0c282d354caf4305.d: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/fifo.rs crates/common/src/geometry.rs crates/common/src/hash.rs crates/common/src/ids.rs crates/common/src/latency.rs crates/common/src/merge.rs crates/common/src/rng.rs crates/common/src/sync.rs

/root/repo/target/release/deps/libslicc_common-0c282d354caf4305.rlib: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/fifo.rs crates/common/src/geometry.rs crates/common/src/hash.rs crates/common/src/ids.rs crates/common/src/latency.rs crates/common/src/merge.rs crates/common/src/rng.rs crates/common/src/sync.rs

/root/repo/target/release/deps/libslicc_common-0c282d354caf4305.rmeta: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/fifo.rs crates/common/src/geometry.rs crates/common/src/hash.rs crates/common/src/ids.rs crates/common/src/latency.rs crates/common/src/merge.rs crates/common/src/rng.rs crates/common/src/sync.rs

crates/common/src/lib.rs:
crates/common/src/addr.rs:
crates/common/src/fifo.rs:
crates/common/src/geometry.rs:
crates/common/src/hash.rs:
crates/common/src/ids.rs:
crates/common/src/latency.rs:
crates/common/src/merge.rs:
crates/common/src/rng.rs:
crates/common/src/sync.rs:
