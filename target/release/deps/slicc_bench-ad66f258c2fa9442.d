/root/repo/target/release/deps/slicc_bench-ad66f258c2fa9442.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/format.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libslicc_bench-ad66f258c2fa9442.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/format.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libslicc_bench-ad66f258c2fa9442.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/format.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/format.rs:
crates/bench/src/microbench.rs:
