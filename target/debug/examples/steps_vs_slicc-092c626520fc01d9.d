/root/repo/target/debug/examples/steps_vs_slicc-092c626520fc01d9.d: crates/sim/../../examples/steps_vs_slicc.rs Cargo.toml

/root/repo/target/debug/examples/libsteps_vs_slicc-092c626520fc01d9.rmeta: crates/sim/../../examples/steps_vs_slicc.rs Cargo.toml

crates/sim/../../examples/steps_vs_slicc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
