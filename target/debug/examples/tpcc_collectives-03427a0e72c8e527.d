/root/repo/target/debug/examples/tpcc_collectives-03427a0e72c8e527.d: crates/sim/../../examples/tpcc_collectives.rs Cargo.toml

/root/repo/target/debug/examples/libtpcc_collectives-03427a0e72c8e527.rmeta: crates/sim/../../examples/tpcc_collectives.rs Cargo.toml

crates/sim/../../examples/tpcc_collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
