/root/repo/target/debug/examples/migration_anatomy-541257aff211c74f.d: crates/sim/../../examples/migration_anatomy.rs Cargo.toml

/root/repo/target/debug/examples/libmigration_anatomy-541257aff211c74f.rmeta: crates/sim/../../examples/migration_anatomy.rs Cargo.toml

crates/sim/../../examples/migration_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
