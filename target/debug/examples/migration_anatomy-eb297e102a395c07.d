/root/repo/target/debug/examples/migration_anatomy-eb297e102a395c07.d: crates/sim/../../examples/migration_anatomy.rs

/root/repo/target/debug/examples/migration_anatomy-eb297e102a395c07: crates/sim/../../examples/migration_anatomy.rs

crates/sim/../../examples/migration_anatomy.rs:
