/root/repo/target/debug/examples/quickstart-b46ec33bedb6aeac.d: crates/sim/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b46ec33bedb6aeac.rmeta: crates/sim/../../examples/quickstart.rs Cargo.toml

crates/sim/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
