/root/repo/target/debug/examples/steps_vs_slicc-a8d8181c1a6a029e.d: crates/sim/../../examples/steps_vs_slicc.rs

/root/repo/target/debug/examples/steps_vs_slicc-a8d8181c1a6a029e: crates/sim/../../examples/steps_vs_slicc.rs

crates/sim/../../examples/steps_vs_slicc.rs:
