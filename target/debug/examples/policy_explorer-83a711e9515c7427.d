/root/repo/target/debug/examples/policy_explorer-83a711e9515c7427.d: crates/sim/../../examples/policy_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_explorer-83a711e9515c7427.rmeta: crates/sim/../../examples/policy_explorer.rs Cargo.toml

crates/sim/../../examples/policy_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
