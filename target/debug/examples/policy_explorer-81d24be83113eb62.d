/root/repo/target/debug/examples/policy_explorer-81d24be83113eb62.d: crates/sim/../../examples/policy_explorer.rs

/root/repo/target/debug/examples/policy_explorer-81d24be83113eb62: crates/sim/../../examples/policy_explorer.rs

crates/sim/../../examples/policy_explorer.rs:
