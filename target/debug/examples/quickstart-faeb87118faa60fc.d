/root/repo/target/debug/examples/quickstart-faeb87118faa60fc.d: crates/sim/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-faeb87118faa60fc: crates/sim/../../examples/quickstart.rs

crates/sim/../../examples/quickstart.rs:
