/root/repo/target/debug/examples/tpcc_collectives-bf91758652336980.d: crates/sim/../../examples/tpcc_collectives.rs

/root/repo/target/debug/examples/tpcc_collectives-bf91758652336980: crates/sim/../../examples/tpcc_collectives.rs

crates/sim/../../examples/tpcc_collectives.rs:
