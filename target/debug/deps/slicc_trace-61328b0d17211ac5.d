/root/repo/target/debug/deps/slicc_trace-61328b0d17211ac5.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/builder.rs crates/trace/src/codec.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/thread_gen.rs crates/trace/src/validate.rs crates/trace/src/workload.rs

/root/repo/target/debug/deps/libslicc_trace-61328b0d17211ac5.rlib: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/builder.rs crates/trace/src/codec.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/thread_gen.rs crates/trace/src/validate.rs crates/trace/src/workload.rs

/root/repo/target/debug/deps/libslicc_trace-61328b0d17211ac5.rmeta: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/builder.rs crates/trace/src/codec.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/thread_gen.rs crates/trace/src/validate.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/builder.rs:
crates/trace/src/codec.rs:
crates/trace/src/segment.rs:
crates/trace/src/stats.rs:
crates/trace/src/thread_gen.rs:
crates/trace/src/validate.rs:
crates/trace/src/workload.rs:
