/root/repo/target/debug/deps/slicc_core-2d8a52dac9f1b68a.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/hw_cost.rs crates/core/src/mask.rs crates/core/src/mc.rs crates/core/src/msv.rs crates/core/src/mtq.rs crates/core/src/params.rs crates/core/src/scout.rs crates/core/src/team.rs

/root/repo/target/debug/deps/slicc_core-2d8a52dac9f1b68a: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/hw_cost.rs crates/core/src/mask.rs crates/core/src/mc.rs crates/core/src/msv.rs crates/core/src/mtq.rs crates/core/src/params.rs crates/core/src/scout.rs crates/core/src/team.rs

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/hw_cost.rs:
crates/core/src/mask.rs:
crates/core/src/mc.rs:
crates/core/src/msv.rs:
crates/core/src/mtq.rs:
crates/core/src/params.rs:
crates/core/src/scout.rs:
crates/core/src/team.rs:
