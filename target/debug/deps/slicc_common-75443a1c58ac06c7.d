/root/repo/target/debug/deps/slicc_common-75443a1c58ac06c7.d: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/fifo.rs crates/common/src/geometry.rs crates/common/src/hash.rs crates/common/src/ids.rs crates/common/src/latency.rs crates/common/src/merge.rs crates/common/src/rng.rs crates/common/src/sync.rs

/root/repo/target/debug/deps/slicc_common-75443a1c58ac06c7: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/fifo.rs crates/common/src/geometry.rs crates/common/src/hash.rs crates/common/src/ids.rs crates/common/src/latency.rs crates/common/src/merge.rs crates/common/src/rng.rs crates/common/src/sync.rs

crates/common/src/lib.rs:
crates/common/src/addr.rs:
crates/common/src/fifo.rs:
crates/common/src/geometry.rs:
crates/common/src/hash.rs:
crates/common/src/ids.rs:
crates/common/src/latency.rs:
crates/common/src/merge.rs:
crates/common/src/rng.rs:
crates/common/src/sync.rs:
