/root/repo/target/debug/deps/integration-37fdf777014e3f39.d: crates/sim/../../tests/integration.rs

/root/repo/target/debug/deps/integration-37fdf777014e3f39: crates/sim/../../tests/integration.rs

crates/sim/../../tests/integration.rs:
