/root/repo/target/debug/deps/figures-1d2b21fb03585621.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-1d2b21fb03585621: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
