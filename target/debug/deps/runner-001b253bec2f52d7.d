/root/repo/target/debug/deps/runner-001b253bec2f52d7.d: crates/sim/../../tests/runner.rs

/root/repo/target/debug/deps/runner-001b253bec2f52d7: crates/sim/../../tests/runner.rs

crates/sim/../../tests/runner.rs:
