/root/repo/target/debug/deps/slicc_cache-e78eb0fedf298fdd.d: crates/cache/src/lib.rs crates/cache/src/bloom.rs crates/cache/src/cache.rs crates/cache/src/classify.rs crates/cache/src/lru_list.rs crates/cache/src/mshr.rs crates/cache/src/pif.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libslicc_cache-e78eb0fedf298fdd.rmeta: crates/cache/src/lib.rs crates/cache/src/bloom.rs crates/cache/src/cache.rs crates/cache/src/classify.rs crates/cache/src/lru_list.rs crates/cache/src/mshr.rs crates/cache/src/pif.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/bloom.rs:
crates/cache/src/cache.rs:
crates/cache/src/classify.rs:
crates/cache/src/lru_list.rs:
crates/cache/src/mshr.rs:
crates/cache/src/pif.rs:
crates/cache/src/policy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
