/root/repo/target/debug/deps/cli-6870c0535115585b.d: crates/sim/../../tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-6870c0535115585b.rmeta: crates/sim/../../tests/cli.rs Cargo.toml

crates/sim/../../tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_slicc=placeholder:slicc
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
