/root/repo/target/debug/deps/slicc_core-16e88b90173c8519.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/hw_cost.rs crates/core/src/mask.rs crates/core/src/mc.rs crates/core/src/msv.rs crates/core/src/mtq.rs crates/core/src/params.rs crates/core/src/scout.rs crates/core/src/team.rs Cargo.toml

/root/repo/target/debug/deps/libslicc_core-16e88b90173c8519.rmeta: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/hw_cost.rs crates/core/src/mask.rs crates/core/src/mc.rs crates/core/src/msv.rs crates/core/src/mtq.rs crates/core/src/params.rs crates/core/src/scout.rs crates/core/src/team.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/hw_cost.rs:
crates/core/src/mask.rs:
crates/core/src/mc.rs:
crates/core/src/msv.rs:
crates/core/src/mtq.rs:
crates/core/src/params.rs:
crates/core/src/scout.rs:
crates/core/src/team.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
