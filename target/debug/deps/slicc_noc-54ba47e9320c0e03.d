/root/repo/target/debug/deps/slicc_noc-54ba47e9320c0e03.d: crates/noc/src/lib.rs crates/noc/src/stats.rs crates/noc/src/torus.rs

/root/repo/target/debug/deps/libslicc_noc-54ba47e9320c0e03.rlib: crates/noc/src/lib.rs crates/noc/src/stats.rs crates/noc/src/torus.rs

/root/repo/target/debug/deps/libslicc_noc-54ba47e9320c0e03.rmeta: crates/noc/src/lib.rs crates/noc/src/stats.rs crates/noc/src/torus.rs

crates/noc/src/lib.rs:
crates/noc/src/stats.rs:
crates/noc/src/torus.rs:
