/root/repo/target/debug/deps/figure4_scenario-e15f0cfa40da270e.d: crates/sim/../../tests/figure4_scenario.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4_scenario-e15f0cfa40da270e.rmeta: crates/sim/../../tests/figure4_scenario.rs Cargo.toml

crates/sim/../../tests/figure4_scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
