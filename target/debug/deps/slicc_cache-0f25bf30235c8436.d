/root/repo/target/debug/deps/slicc_cache-0f25bf30235c8436.d: crates/cache/src/lib.rs crates/cache/src/bloom.rs crates/cache/src/cache.rs crates/cache/src/classify.rs crates/cache/src/lru_list.rs crates/cache/src/mshr.rs crates/cache/src/pif.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libslicc_cache-0f25bf30235c8436.rlib: crates/cache/src/lib.rs crates/cache/src/bloom.rs crates/cache/src/cache.rs crates/cache/src/classify.rs crates/cache/src/lru_list.rs crates/cache/src/mshr.rs crates/cache/src/pif.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libslicc_cache-0f25bf30235c8436.rmeta: crates/cache/src/lib.rs crates/cache/src/bloom.rs crates/cache/src/cache.rs crates/cache/src/classify.rs crates/cache/src/lru_list.rs crates/cache/src/mshr.rs crates/cache/src/pif.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/bloom.rs:
crates/cache/src/cache.rs:
crates/cache/src/classify.rs:
crates/cache/src/lru_list.rs:
crates/cache/src/mshr.rs:
crates/cache/src/pif.rs:
crates/cache/src/policy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/stats.rs:
