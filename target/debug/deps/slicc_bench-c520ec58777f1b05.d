/root/repo/target/debug/deps/slicc_bench-c520ec58777f1b05.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/format.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libslicc_bench-c520ec58777f1b05.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/format.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libslicc_bench-c520ec58777f1b05.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/format.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/format.rs:
crates/bench/src/microbench.rs:
