/root/repo/target/debug/deps/slicc_mem-7c51e78969d14719.d: crates/mem/src/lib.rs crates/mem/src/dram.rs crates/mem/src/l2.rs Cargo.toml

/root/repo/target/debug/deps/libslicc_mem-7c51e78969d14719.rmeta: crates/mem/src/lib.rs crates/mem/src/dram.rs crates/mem/src/l2.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/dram.rs:
crates/mem/src/l2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
