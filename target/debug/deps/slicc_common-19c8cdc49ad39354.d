/root/repo/target/debug/deps/slicc_common-19c8cdc49ad39354.d: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/fifo.rs crates/common/src/geometry.rs crates/common/src/hash.rs crates/common/src/ids.rs crates/common/src/latency.rs crates/common/src/merge.rs crates/common/src/rng.rs crates/common/src/sync.rs

/root/repo/target/debug/deps/libslicc_common-19c8cdc49ad39354.rlib: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/fifo.rs crates/common/src/geometry.rs crates/common/src/hash.rs crates/common/src/ids.rs crates/common/src/latency.rs crates/common/src/merge.rs crates/common/src/rng.rs crates/common/src/sync.rs

/root/repo/target/debug/deps/libslicc_common-19c8cdc49ad39354.rmeta: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/fifo.rs crates/common/src/geometry.rs crates/common/src/hash.rs crates/common/src/ids.rs crates/common/src/latency.rs crates/common/src/merge.rs crates/common/src/rng.rs crates/common/src/sync.rs

crates/common/src/lib.rs:
crates/common/src/addr.rs:
crates/common/src/fifo.rs:
crates/common/src/geometry.rs:
crates/common/src/hash.rs:
crates/common/src/ids.rs:
crates/common/src/latency.rs:
crates/common/src/merge.rs:
crates/common/src/rng.rs:
crates/common/src/sync.rs:
