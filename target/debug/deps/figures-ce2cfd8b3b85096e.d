/root/repo/target/debug/deps/figures-ce2cfd8b3b85096e.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-ce2cfd8b3b85096e.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
