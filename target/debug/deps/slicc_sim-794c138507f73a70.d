/root/repo/target/debug/deps/slicc_sim-794c138507f73a70.d: crates/sim/src/lib.rs crates/sim/src/checkpoint.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/runner.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/slicc_sim-794c138507f73a70: crates/sim/src/lib.rs crates/sim/src/checkpoint.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/runner.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/checkpoint.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
crates/sim/src/runner.rs:
crates/sim/src/system.rs:
