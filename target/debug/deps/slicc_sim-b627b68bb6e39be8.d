/root/repo/target/debug/deps/slicc_sim-b627b68bb6e39be8.d: crates/sim/src/lib.rs crates/sim/src/checkpoint.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/runner.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/libslicc_sim-b627b68bb6e39be8.rlib: crates/sim/src/lib.rs crates/sim/src/checkpoint.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/runner.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/libslicc_sim-b627b68bb6e39be8.rmeta: crates/sim/src/lib.rs crates/sim/src/checkpoint.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/runner.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/checkpoint.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
crates/sim/src/runner.rs:
crates/sim/src/system.rs:
