/root/repo/target/debug/deps/slicc_cpu-302f3e1b330bb20d.d: crates/cpu/src/lib.rs crates/cpu/src/migration.rs crates/cpu/src/timing.rs crates/cpu/src/tlb.rs

/root/repo/target/debug/deps/libslicc_cpu-302f3e1b330bb20d.rlib: crates/cpu/src/lib.rs crates/cpu/src/migration.rs crates/cpu/src/timing.rs crates/cpu/src/tlb.rs

/root/repo/target/debug/deps/libslicc_cpu-302f3e1b330bb20d.rmeta: crates/cpu/src/lib.rs crates/cpu/src/migration.rs crates/cpu/src/timing.rs crates/cpu/src/tlb.rs

crates/cpu/src/lib.rs:
crates/cpu/src/migration.rs:
crates/cpu/src/timing.rs:
crates/cpu/src/tlb.rs:
