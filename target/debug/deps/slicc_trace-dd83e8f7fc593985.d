/root/repo/target/debug/deps/slicc_trace-dd83e8f7fc593985.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/builder.rs crates/trace/src/codec.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/thread_gen.rs crates/trace/src/validate.rs crates/trace/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libslicc_trace-dd83e8f7fc593985.rmeta: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/builder.rs crates/trace/src/codec.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/thread_gen.rs crates/trace/src/validate.rs crates/trace/src/workload.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/builder.rs:
crates/trace/src/codec.rs:
crates/trace/src/segment.rs:
crates/trace/src/stats.rs:
crates/trace/src/thread_gen.rs:
crates/trace/src/validate.rs:
crates/trace/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
