/root/repo/target/debug/deps/runner-fd254d94c5a11f0b.d: crates/sim/../../tests/runner.rs Cargo.toml

/root/repo/target/debug/deps/librunner-fd254d94c5a11f0b.rmeta: crates/sim/../../tests/runner.rs Cargo.toml

crates/sim/../../tests/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
