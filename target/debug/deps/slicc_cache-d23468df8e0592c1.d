/root/repo/target/debug/deps/slicc_cache-d23468df8e0592c1.d: crates/cache/src/lib.rs crates/cache/src/bloom.rs crates/cache/src/cache.rs crates/cache/src/classify.rs crates/cache/src/lru_list.rs crates/cache/src/mshr.rs crates/cache/src/pif.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/slicc_cache-d23468df8e0592c1: crates/cache/src/lib.rs crates/cache/src/bloom.rs crates/cache/src/cache.rs crates/cache/src/classify.rs crates/cache/src/lru_list.rs crates/cache/src/mshr.rs crates/cache/src/pif.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/bloom.rs:
crates/cache/src/cache.rs:
crates/cache/src/classify.rs:
crates/cache/src/lru_list.rs:
crates/cache/src/mshr.rs:
crates/cache/src/pif.rs:
crates/cache/src/policy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/stats.rs:
