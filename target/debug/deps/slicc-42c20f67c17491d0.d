/root/repo/target/debug/deps/slicc-42c20f67c17491d0.d: crates/sim/src/bin/slicc.rs Cargo.toml

/root/repo/target/debug/deps/libslicc-42c20f67c17491d0.rmeta: crates/sim/src/bin/slicc.rs Cargo.toml

crates/sim/src/bin/slicc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
