/root/repo/target/debug/deps/slicc-bc0bc73ffcb1b83d.d: crates/sim/src/bin/slicc.rs

/root/repo/target/debug/deps/slicc-bc0bc73ffcb1b83d: crates/sim/src/bin/slicc.rs

crates/sim/src/bin/slicc.rs:
