/root/repo/target/debug/deps/slicc_noc-19d48e9a66a21cc0.d: crates/noc/src/lib.rs crates/noc/src/stats.rs crates/noc/src/torus.rs

/root/repo/target/debug/deps/slicc_noc-19d48e9a66a21cc0: crates/noc/src/lib.rs crates/noc/src/stats.rs crates/noc/src/torus.rs

crates/noc/src/lib.rs:
crates/noc/src/stats.rs:
crates/noc/src/torus.rs:
