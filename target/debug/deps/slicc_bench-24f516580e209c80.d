/root/repo/target/debug/deps/slicc_bench-24f516580e209c80.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/format.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/slicc_bench-24f516580e209c80: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/format.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/format.rs:
crates/bench/src/microbench.rs:
