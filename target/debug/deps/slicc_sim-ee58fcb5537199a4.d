/root/repo/target/debug/deps/slicc_sim-ee58fcb5537199a4.d: crates/sim/src/lib.rs crates/sim/src/checkpoint.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/runner.rs crates/sim/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libslicc_sim-ee58fcb5537199a4.rmeta: crates/sim/src/lib.rs crates/sim/src/checkpoint.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs crates/sim/src/runner.rs crates/sim/src/system.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/checkpoint.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
crates/sim/src/runner.rs:
crates/sim/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
