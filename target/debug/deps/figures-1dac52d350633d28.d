/root/repo/target/debug/deps/figures-1dac52d350633d28.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-1dac52d350633d28: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
