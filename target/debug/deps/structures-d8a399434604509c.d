/root/repo/target/debug/deps/structures-d8a399434604509c.d: crates/bench/benches/structures.rs Cargo.toml

/root/repo/target/debug/deps/libstructures-d8a399434604509c.rmeta: crates/bench/benches/structures.rs Cargo.toml

crates/bench/benches/structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
