/root/repo/target/debug/deps/slicc-c7bab33f2076c43e.d: crates/sim/src/bin/slicc.rs

/root/repo/target/debug/deps/slicc-c7bab33f2076c43e: crates/sim/src/bin/slicc.rs

crates/sim/src/bin/slicc.rs:
