/root/repo/target/debug/deps/slicc_noc-ee38a36b8882e291.d: crates/noc/src/lib.rs crates/noc/src/stats.rs crates/noc/src/torus.rs Cargo.toml

/root/repo/target/debug/deps/libslicc_noc-ee38a36b8882e291.rmeta: crates/noc/src/lib.rs crates/noc/src/stats.rs crates/noc/src/torus.rs Cargo.toml

crates/noc/src/lib.rs:
crates/noc/src/stats.rs:
crates/noc/src/torus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
