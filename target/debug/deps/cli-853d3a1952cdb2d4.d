/root/repo/target/debug/deps/cli-853d3a1952cdb2d4.d: crates/sim/../../tests/cli.rs

/root/repo/target/debug/deps/cli-853d3a1952cdb2d4: crates/sim/../../tests/cli.rs

crates/sim/../../tests/cli.rs:

# env-dep:CARGO_BIN_EXE_slicc=/root/repo/target/debug/slicc
