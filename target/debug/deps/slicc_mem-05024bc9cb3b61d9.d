/root/repo/target/debug/deps/slicc_mem-05024bc9cb3b61d9.d: crates/mem/src/lib.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

/root/repo/target/debug/deps/libslicc_mem-05024bc9cb3b61d9.rlib: crates/mem/src/lib.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

/root/repo/target/debug/deps/libslicc_mem-05024bc9cb3b61d9.rmeta: crates/mem/src/lib.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

crates/mem/src/lib.rs:
crates/mem/src/dram.rs:
crates/mem/src/l2.rs:
