/root/repo/target/debug/deps/slicc_mem-dbe100df3c17731a.d: crates/mem/src/lib.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

/root/repo/target/debug/deps/slicc_mem-dbe100df3c17731a: crates/mem/src/lib.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

crates/mem/src/lib.rs:
crates/mem/src/dram.rs:
crates/mem/src/l2.rs:
