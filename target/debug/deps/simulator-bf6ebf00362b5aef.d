/root/repo/target/debug/deps/simulator-bf6ebf00362b5aef.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-bf6ebf00362b5aef.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
