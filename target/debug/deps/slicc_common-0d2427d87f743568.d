/root/repo/target/debug/deps/slicc_common-0d2427d87f743568.d: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/fifo.rs crates/common/src/geometry.rs crates/common/src/hash.rs crates/common/src/ids.rs crates/common/src/latency.rs crates/common/src/merge.rs crates/common/src/rng.rs crates/common/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libslicc_common-0d2427d87f743568.rmeta: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/fifo.rs crates/common/src/geometry.rs crates/common/src/hash.rs crates/common/src/ids.rs crates/common/src/latency.rs crates/common/src/merge.rs crates/common/src/rng.rs crates/common/src/sync.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/addr.rs:
crates/common/src/fifo.rs:
crates/common/src/geometry.rs:
crates/common/src/hash.rs:
crates/common/src/ids.rs:
crates/common/src/latency.rs:
crates/common/src/merge.rs:
crates/common/src/rng.rs:
crates/common/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
