/root/repo/target/debug/deps/slicc_cpu-3895aaaa52a047e8.d: crates/cpu/src/lib.rs crates/cpu/src/migration.rs crates/cpu/src/timing.rs crates/cpu/src/tlb.rs Cargo.toml

/root/repo/target/debug/deps/libslicc_cpu-3895aaaa52a047e8.rmeta: crates/cpu/src/lib.rs crates/cpu/src/migration.rs crates/cpu/src/timing.rs crates/cpu/src/tlb.rs Cargo.toml

crates/cpu/src/lib.rs:
crates/cpu/src/migration.rs:
crates/cpu/src/timing.rs:
crates/cpu/src/tlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
