/root/repo/target/debug/deps/slicc_trace-e3d8becde599defb.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/builder.rs crates/trace/src/codec.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/thread_gen.rs crates/trace/src/validate.rs crates/trace/src/workload.rs

/root/repo/target/debug/deps/slicc_trace-e3d8becde599defb: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/builder.rs crates/trace/src/codec.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/thread_gen.rs crates/trace/src/validate.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/builder.rs:
crates/trace/src/codec.rs:
crates/trace/src/segment.rs:
crates/trace/src/stats.rs:
crates/trace/src/thread_gen.rs:
crates/trace/src/validate.rs:
crates/trace/src/workload.rs:
