/root/repo/target/debug/deps/figure4_scenario-cddfb46de9a4b41f.d: crates/sim/../../tests/figure4_scenario.rs

/root/repo/target/debug/deps/figure4_scenario-cddfb46de9a4b41f: crates/sim/../../tests/figure4_scenario.rs

crates/sim/../../tests/figure4_scenario.rs:
