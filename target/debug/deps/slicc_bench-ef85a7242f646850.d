/root/repo/target/debug/deps/slicc_bench-ef85a7242f646850.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/format.rs crates/bench/src/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libslicc_bench-ef85a7242f646850.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/format.rs crates/bench/src/microbench.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/format.rs:
crates/bench/src/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
