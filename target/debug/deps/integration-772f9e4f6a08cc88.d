/root/repo/target/debug/deps/integration-772f9e4f6a08cc88.d: crates/sim/../../tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-772f9e4f6a08cc88.rmeta: crates/sim/../../tests/integration.rs Cargo.toml

crates/sim/../../tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
