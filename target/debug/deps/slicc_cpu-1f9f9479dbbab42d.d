/root/repo/target/debug/deps/slicc_cpu-1f9f9479dbbab42d.d: crates/cpu/src/lib.rs crates/cpu/src/migration.rs crates/cpu/src/timing.rs crates/cpu/src/tlb.rs

/root/repo/target/debug/deps/slicc_cpu-1f9f9479dbbab42d: crates/cpu/src/lib.rs crates/cpu/src/migration.rs crates/cpu/src/timing.rs crates/cpu/src/tlb.rs

crates/cpu/src/lib.rs:
crates/cpu/src/migration.rs:
crates/cpu/src/timing.rs:
crates/cpu/src/tlb.rs:
