/root/repo/target/debug/deps/slicc-655a7f553e70d9a6.d: crates/sim/src/bin/slicc.rs Cargo.toml

/root/repo/target/debug/deps/libslicc-655a7f553e70d9a6.rmeta: crates/sim/src/bin/slicc.rs Cargo.toml

crates/sim/src/bin/slicc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
