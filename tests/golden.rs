//! Golden-determinism gate for simulator performance work.
//!
//! The digests below were captured on the *pre-optimization* hot path
//! (before the allocation-free memory system, bitmask cache lookup, spec
//! memoization, and idle-set engine landed). Every scheduler mode's full
//! [`slicc_sim::RunMetrics`] must reproduce them exactly: optimizing the
//! simulator must never change what it simulates. If a *deliberate* model
//! change lands, re-capture with `cargo test --test golden -- --nocapture`
//! and update the table in the same commit that changes the model.

use slicc_sim::{ObsConfig, RunControl, RunRequest, RunSession, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};

/// Pre-optimization digests of the full metrics struct, one per mode, on
/// the tiny TPC-C-1 workload under `SimConfig::tiny_test()`.
const GOLDEN: [(SchedulerMode, u64); 5] = [
    (SchedulerMode::Baseline, 0x20819f2156f06c11),
    (SchedulerMode::Slicc, 0xd6a44727ba7303fc),
    (SchedulerMode::SliccSw, 0xd95c19ac39746962),
    (SchedulerMode::SliccPp, 0x3c04dada01c073dc),
    (SchedulerMode::Steps, 0xf5a0e22ab81e5504),
];

fn digest_of(mode: SchedulerMode) -> u64 {
    let req = RunRequest::new(
        Workload::TpcC1,
        TraceScale::tiny(),
        SimConfig::tiny_test().with_mode(mode),
    );
    req.try_execute().expect("tiny point completes").metrics.digest()
}

#[test]
fn metrics_are_byte_identical_to_pre_optimization_capture() {
    let mut drifted = Vec::new();
    for (mode, want) in GOLDEN {
        let got = digest_of(mode);
        println!("    (SchedulerMode::{mode:?}, 0x{got:016x}),");
        if got != want {
            drifted.push((mode, want, got));
        }
    }
    assert!(
        drifted.is_empty(),
        "simulated results drifted from the golden capture: {drifted:x?}"
    );
}

#[test]
fn digest_is_stable_across_runs_and_sensitive_to_results() {
    let a = digest_of(SchedulerMode::Slicc);
    let b = digest_of(SchedulerMode::Slicc);
    assert_eq!(a, b, "same point must digest identically");
    assert_ne!(a, digest_of(SchedulerMode::Baseline), "different runs must differ");
}

/// The [`RunSession`] API and the deprecated one-release shims must
/// simulate the same machine: every composition (quiescent, observed,
/// controlled-but-never-fired) reproduces the golden digest in every
/// mode. This is the equivalence contract that lets the shims delegate.
#[test]
#[allow(deprecated)] // the point of this test is shim equivalence
fn run_session_compositions_match_the_deprecated_entry_points_in_every_mode() {
    for (mode, want) in GOLDEN {
        let spec = Workload::TpcC1.spec(TraceScale::tiny());
        let cfg = SimConfig::tiny_test().with_mode(mode);

        let quiescent =
            RunSession::new(&spec, &cfg).unwrap().run().unwrap().metrics.digest();
        let observed = RunSession::new(&spec, &cfg)
            .unwrap()
            .observe(ObsConfig::disabled().with_events().with_epochs(1_000))
            .run()
            .unwrap()
            .metrics
            .digest();
        let controlled = RunSession::new(&spec, &cfg)
            .unwrap()
            .control(RunControl::unbounded())
            .run()
            .unwrap()
            .metrics
            .digest();
        let shim_run = slicc_sim::run(&spec, &cfg).digest();
        let shim_try = slicc_sim::try_run(&spec, &cfg).unwrap().digest();
        let shim_observed = slicc_sim::try_run_observed(&spec, &cfg, &ObsConfig::disabled())
            .unwrap()
            .0
            .digest();

        for (what, got) in [
            ("quiescent session", quiescent),
            ("observed session", observed),
            ("controlled session", controlled),
            ("deprecated run", shim_run),
            ("deprecated try_run", shim_try),
            ("deprecated try_run_observed", shim_observed),
        ] {
            assert_eq!(got, want, "{mode:?}: {what} drifted from the golden digest");
        }
    }
}

/// `threads_per_point` parallelizes trace *decoding*, never the
/// simulation itself: a multi-threaded point must be byte-identical to
/// its single-threaded twin (and to the golden capture) in every mode.
#[test]
fn threads_per_point_never_changes_simulated_results() {
    for (mode, want) in GOLDEN {
        let spec = Workload::TpcC1.spec(TraceScale::tiny());
        let mut cfg = SimConfig::tiny_test().with_mode(mode);
        cfg.threads_per_point = 4;
        let wide = RunSession::new(&spec, &cfg).unwrap().run().unwrap().metrics.digest();
        assert_eq!(wide, want, "{mode:?}: 4 decode threads drifted from the golden digest");
    }
}
