//! Golden-determinism gate for simulator performance work.
//!
//! The digests below were captured on the *pre-optimization* hot path
//! (before the allocation-free memory system, bitmask cache lookup, spec
//! memoization, and idle-set engine landed). Every scheduler mode's full
//! [`slicc_sim::RunMetrics`] must reproduce them exactly: optimizing the
//! simulator must never change what it simulates. If a *deliberate* model
//! change lands, re-capture with `cargo test --test golden -- --nocapture`
//! and update the table in the same commit that changes the model.

use slicc_sim::{ObsConfig, RunControl, RunRequest, RunSession, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};

/// Golden digests of the full metrics struct, one per mode, on the tiny
/// TPC-C-1 workload under `SimConfig::tiny_test()`. Re-captured once for
/// the split-step engine (DESIGN.md §13): deferring cross-core coherence
/// effects to step barriers is a deliberate, uniformly-applied model
/// change, so the digests moved exactly once — and are now required to be
/// identical for every `point_threads` value.
const GOLDEN: [(SchedulerMode, u64); 5] = [
    (SchedulerMode::Baseline, 0xbd28ed3fc9c55726),
    (SchedulerMode::Slicc, 0x33c3295a1792268b),
    (SchedulerMode::SliccSw, 0x6e9bc22167b0a6a7),
    (SchedulerMode::SliccPp, 0xc8ff72fac95fc811),
    (SchedulerMode::Steps, 0xe8e91436bdd53261),
];

fn digest_of(mode: SchedulerMode) -> u64 {
    let req = RunRequest::new(
        Workload::TpcC1,
        TraceScale::tiny(),
        SimConfig::tiny_test().with_mode(mode),
    );
    req.try_execute().expect("tiny point completes").metrics.digest()
}

#[test]
fn metrics_are_byte_identical_to_pre_optimization_capture() {
    let mut drifted = Vec::new();
    for (mode, want) in GOLDEN {
        let got = digest_of(mode);
        println!("    (SchedulerMode::{mode:?}, 0x{got:016x}),");
        if got != want {
            drifted.push((mode, want, got));
        }
    }
    assert!(
        drifted.is_empty(),
        "simulated results drifted from the golden capture: {drifted:x?}"
    );
}

#[test]
fn digest_is_stable_across_runs_and_sensitive_to_results() {
    let a = digest_of(SchedulerMode::Slicc);
    let b = digest_of(SchedulerMode::Slicc);
    assert_eq!(a, b, "same point must digest identically");
    assert_ne!(a, digest_of(SchedulerMode::Baseline), "different runs must differ");
}

/// Every [`RunSession`] composition — quiescent, observed,
/// controlled-but-never-fired — must simulate the same machine: each
/// reproduces the golden digest in every mode. This is the equivalence
/// contract that let PR 6 collapse the engine's entry-point matrix into
/// the one session builder.
#[test]
fn run_session_compositions_all_match_the_golden_digest_in_every_mode() {
    for (mode, want) in GOLDEN {
        let spec = Workload::TpcC1.spec(TraceScale::tiny());
        let cfg = SimConfig::tiny_test().with_mode(mode);

        let quiescent =
            RunSession::new(&spec, &cfg).unwrap().run().unwrap().metrics.digest();
        let observed = RunSession::new(&spec, &cfg)
            .unwrap()
            .observe(ObsConfig::disabled().with_events().with_epochs(1_000))
            .run()
            .unwrap()
            .metrics
            .digest();
        let controlled = RunSession::new(&spec, &cfg)
            .unwrap()
            .control(RunControl::unbounded())
            .run()
            .unwrap()
            .metrics
            .digest();

        for (what, got) in [
            ("quiescent session", quiescent),
            ("observed session", observed),
            ("controlled session", controlled),
        ] {
            assert_eq!(got, want, "{mode:?}: {what} drifted from the golden digest");
        }
    }
}

/// Resource governance — a bounded cache, admission limits, a service
/// front door — must never change what a finished run computes: the
/// golden digests reproduce under a thrashing byte budget and through
/// [`slicc_sim::SimService`] submission alike (DESIGN.md §12).
#[test]
fn governed_runners_reproduce_the_golden_digests() {
    use slicc_sim::{Runner, ServiceConfig, SimService};
    use std::sync::Arc;

    let runner = Arc::new(Runner::new(2));
    runner.set_cache_bytes(64); // far below one entry: every insert evicts
    let service = SimService::new(
        Arc::clone(&runner),
        ServiceConfig { max_inflight: 2, queue_limit: 8 },
    );
    for (mode, want) in GOLDEN {
        let req = RunRequest::new(
            Workload::TpcC1,
            TraceScale::tiny(),
            SimConfig::tiny_test().with_mode(mode),
        );
        let got = service.submit(&req).expect("governed submission completes").metrics.digest();
        assert_eq!(got, want, "{mode:?}: governance changed a simulated result");
    }
    assert!(runner.stats().cache_bytes <= 64, "the byte budget must hold");
}

/// `decode_threads` parallelizes trace *decoding*, never the
/// simulation itself: a multi-threaded point must be byte-identical to
/// its single-threaded twin (and to the golden capture) in every mode.
#[test]
fn decode_threads_never_change_simulated_results() {
    for (mode, want) in GOLDEN {
        let spec = Workload::TpcC1.spec(TraceScale::tiny());
        let mut cfg = SimConfig::tiny_test().with_mode(mode);
        cfg.decode_threads = 4;
        let wide = RunSession::new(&spec, &cfg).unwrap().run().unwrap().metrics.digest();
        assert_eq!(wide, want, "{mode:?}: 4 decode threads drifted from the golden digest");
    }
}

/// `point_threads` parallelizes the event loop *within* one point, and
/// the shard lanes only ever *speculate* segments whose inputs and
/// commit order the committer fixes — so every worker count must land on
/// the golden digest exactly, in every mode (DESIGN.md §13).
#[test]
fn point_threads_never_change_simulated_results() {
    for (mode, want) in GOLDEN {
        for threads in [1usize, 2, 4, 8] {
            let spec = Workload::TpcC1.spec(TraceScale::tiny());
            let mut cfg = SimConfig::tiny_test().with_mode(mode);
            cfg.point_threads = threads;
            let got = RunSession::new(&spec, &cfg).unwrap().run().unwrap().metrics.digest();
            assert_eq!(
                got, want,
                "{mode:?}: point_threads={threads} drifted from the golden digest"
            );
        }
    }
}
