//! Golden-determinism gate for simulator performance work.
//!
//! The digests below were captured on the *pre-optimization* hot path
//! (before the allocation-free memory system, bitmask cache lookup, spec
//! memoization, and idle-set engine landed). Every scheduler mode's full
//! [`slicc_sim::RunMetrics`] must reproduce them exactly: optimizing the
//! simulator must never change what it simulates. If a *deliberate* model
//! change lands, re-capture with `cargo test --test golden -- --nocapture`
//! and update the table in the same commit that changes the model.

use slicc_sim::{RunRequest, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};

/// Pre-optimization digests of the full metrics struct, one per mode, on
/// the tiny TPC-C-1 workload under `SimConfig::tiny_test()`.
const GOLDEN: [(SchedulerMode, u64); 5] = [
    (SchedulerMode::Baseline, 0x20819f2156f06c11),
    (SchedulerMode::Slicc, 0xd6a44727ba7303fc),
    (SchedulerMode::SliccSw, 0xd95c19ac39746962),
    (SchedulerMode::SliccPp, 0x3c04dada01c073dc),
    (SchedulerMode::Steps, 0xf5a0e22ab81e5504),
];

fn digest_of(mode: SchedulerMode) -> u64 {
    let req = RunRequest::new(
        Workload::TpcC1,
        TraceScale::tiny(),
        SimConfig::tiny_test().with_mode(mode),
    );
    req.try_execute().expect("tiny point completes").metrics.digest()
}

#[test]
fn metrics_are_byte_identical_to_pre_optimization_capture() {
    let mut drifted = Vec::new();
    for (mode, want) in GOLDEN {
        let got = digest_of(mode);
        println!("    (SchedulerMode::{mode:?}, 0x{got:016x}),");
        if got != want {
            drifted.push((mode, want, got));
        }
    }
    assert!(
        drifted.is_empty(),
        "simulated results drifted from the golden capture: {drifted:x?}"
    );
}

#[test]
fn digest_is_stable_across_runs_and_sensitive_to_results() {
    let a = digest_of(SchedulerMode::Slicc);
    let b = digest_of(SchedulerMode::Slicc);
    assert_eq!(a, b, "same point must digest identically");
    assert_ne!(a, digest_of(SchedulerMode::Baseline), "different runs must differ");
}
