//! Property-based tests over the workload generators and the simulator.
//!
//! These use small randomized workloads and configurations to check
//! invariants that must hold for *any* input: determinism, conservation
//! of threads and accesses, metric identities, and the structural
//! properties the synthetic traces promise.

use proptest::prelude::*;
use slicc_common::ThreadId;
use slicc_sim::{RunMetrics, RunSession, SchedulerMode, SimConfig};
use slicc_trace::{
    CodeParams, CodePool, DataParams, DataPattern, TraceScale, TypeSpec, Workload, WorkloadSpec,
};

/// Runs one point through the session API, panicking on any error (the
/// generated workloads are structurally valid by construction).
fn run(spec: &WorkloadSpec, cfg: &SimConfig) -> RunMetrics {
    RunSession::new(spec, cfg).expect("valid config").run().expect("point completes").metrics
}

/// Builds a small but structurally valid random workload.
fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (
        1usize..3,          // number of types
        1usize..3,          // specific segments per type
        0usize..3,          // shared segments
        1u32..5,            // tasks
        2u32..8,            // loop iters
        0.0f64..0.5,        // data ratio
        any::<u64>(),       // seed
    )
        .prop_map(|(n_types, n_spec, n_shared, tasks, iters, data_ratio, seed)| {
            let mut pool = CodePool::with_gap_prob(0.3);
            let shared: Vec<_> = (0..n_shared).map(|_| pool.add_segment(12)).collect();
            let types = (0..n_types)
                .map(|i| TypeSpec {
                    name: format!("type{i}"),
                    weight: 1.0 + i as f64,
                    specific: (0..n_spec).map(|_| pool.add_segment(12)).collect(),
                    loop_iters: iters,
                })
                .collect();
            WorkloadSpec {
                name: "prop".to_owned(),
                seed,
                num_tasks: tasks,
                pool,
                shared,
                types,
                code: CodeParams {
                    instrs_per_block: 8,
                    passes_per_visit: 2,
                    skip_prob: 0.05,
                    sequential_run_blocks: 2,
                },
                data: DataParams {
                    data_ratio,
                    store_frac: 0.45,
                    pattern: DataPattern::OltpMix { p_hot: 0.3, p_recent: 0.5, hot_store_frac: 0.01 },
                    db_blocks: 10_000,
                    hot_blocks: 16,
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn traces_regenerate_identically(spec in arb_workload()) {
        for t in spec.threads() {
            let a: Vec<_> = spec.thread_trace(t).collect();
            let b: Vec<_> = spec.thread_trace(t).collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn traces_are_nonempty_and_bounded(spec in arb_workload()) {
        for t in spec.threads() {
            let len = spec.thread_trace(t).count();
            prop_assert!(len > 0);
            prop_assert!(len < 2_000_000, "runaway trace of {} records", len);
        }
    }

    #[test]
    fn instruction_fetches_stay_in_live_code(spec in arb_workload()) {
        for t in spec.threads() {
            for rec in spec.thread_trace(t).take(2000) {
                let block = rec.pc.block(64);
                prop_assert!(
                    spec.pool.segment_of_block(block).is_some(),
                    "pc {:?} outside live code", rec.pc
                );
            }
        }
    }

    #[test]
    fn data_accesses_respect_the_ratio(spec in arb_workload()) {
        let mut with_data = 0u64;
        let mut total = 0u64;
        for t in spec.threads() {
            for rec in spec.thread_trace(t) {
                total += 1;
                with_data += u64::from(rec.data.is_some());
            }
        }
        if spec.data.data_ratio == 0.0 {
            prop_assert_eq!(with_data, 0);
        } else if total > 5_000 {
            let frac = with_data as f64 / total as f64;
            prop_assert!((frac - spec.data.data_ratio).abs() < 0.1,
                "ratio {} configured {}", frac, spec.data.data_ratio);
        }
    }

    #[test]
    fn thread_types_are_valid_indices(spec in arb_workload()) {
        for t in spec.threads() {
            prop_assert!(spec.thread_type(t).index() < spec.types.len());
        }
    }
}

proptest! {
    // Engine runs are slower: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn engine_is_deterministic_on_random_workloads(
        spec in arb_workload(),
        mode_idx in 0usize..4,
    ) {
        let mode = SchedulerMode::ALL[mode_idx];
        let cfg = SimConfig::tiny_test().with_mode(mode);
        let a = run(&spec, &cfg);
        let b = run(&spec, &cfg);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.i_misses, b.i_misses);
        prop_assert_eq!(a.d_misses, b.d_misses);
        prop_assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn engine_conserves_threads_and_metrics(
        spec in arb_workload(),
        mode_idx in 0usize..4,
    ) {
        let mode = SchedulerMode::ALL[mode_idx];
        let m = run(&spec, &SimConfig::tiny_test().with_mode(mode));
        prop_assert_eq!(m.completed_threads, spec.num_tasks as u64);
        prop_assert!(m.i_misses <= m.i_accesses);
        prop_assert!(m.d_misses <= m.d_accesses);
        prop_assert_eq!(m.migrations, m.matched_migrations + m.idle_migrations);
        prop_assert!(m.cycles > 0);
        // Total instructions equal the sum of all trace lengths.
        let expected: u64 = spec.threads().map(|t| spec.thread_trace(t).count() as u64).sum();
        prop_assert_eq!(m.instructions, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trace_scale_seeds_change_traces(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        prop_assume!(seed_a != seed_b);
        let a = Workload::TpcC1.spec(TraceScale::tiny().with_seed(seed_a));
        let b = Workload::TpcC1.spec(TraceScale::tiny().with_seed(seed_b));
        let ta: Vec<_> = a.thread_trace(ThreadId::new(0)).take(500).collect();
        let tb: Vec<_> = b.thread_trace(ThreadId::new(0)).take(500).collect();
        // Different seeds virtually always give different type picks or
        // paths; equality would indicate the seed is ignored.
        if a.thread_type(ThreadId::new(0)) == b.thread_type(ThreadId::new(0)) {
            // Same type: paths may still coincide very rarely; only flag
            // identical *full* traces.
            let la = a.thread_trace(ThreadId::new(0)).count();
            let lb = b.thread_trace(ThreadId::new(0)).count();
            prop_assert!(ta != tb || la != lb || ta.is_empty());
        }
    }

    #[test]
    fn speedup_is_reciprocal(ca in 1u64..1_000_000, cb in 1u64..1_000_000) {
        let a = slicc_sim::RunMetrics { cycles: ca, ..Default::default() };
        let b = slicc_sim::RunMetrics { cycles: cb, ..Default::default() };
        let prod = a.speedup_over(&b) * b.speedup_over(&a);
        prop_assert!((prod - 1.0).abs() < 1e-9);
    }
}

/// A completed tiny run with its serialized weight padded via the
/// workload name, for the cache-budget properties below. The base point
/// is simulated once and cloned per case.
fn padded_result(pad: usize) -> slicc_sim::RunResult {
    use std::sync::OnceLock;
    static BASE: OnceLock<slicc_sim::RunResult> = OnceLock::new();
    let mut result = BASE
        .get_or_init(|| {
            slicc_sim::RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test())
                .try_execute()
                .expect("tiny run completes")
        })
        .clone();
    result.metrics.workload = "w".repeat(pad);
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The bounded run cache's byte budget is an invariant, not a goal:
    /// after *every* insert, resident bytes stay at or under the budget,
    /// and an entry heavier than the whole budget is never resident
    /// (DESIGN.md §12).
    #[test]
    fn bounded_cache_inserts_never_exceed_the_byte_budget(
        budget in 64u64..16_384,
        inserts in proptest::collection::vec((any::<u64>(), 0usize..4_096), 1..48),
    ) {
        use slicc_sim::service::result_weight;
        use slicc_sim::BoundedResultCache;
        let mut cache = BoundedResultCache::new(budget);
        for (key, pad) in inserts {
            let result = padded_result(pad);
            let weight = result_weight(&result);
            cache.insert(key, result);
            prop_assert!(
                cache.bytes() <= budget,
                "{} bytes resident under a {} byte budget", cache.bytes(), budget
            );
            if weight > budget {
                prop_assert!(
                    !cache.contains(key),
                    "an entry heavier than the whole budget must be refused, not resident"
                );
            }
        }
    }
}

proptest! {
    // Each case simulates three reference points plus a storm of
    // submissions: keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any interleaving of concurrent duplicate submissions — through the
    /// service front door, under an arbitrary (possibly thrashing) cache
    /// budget — is digest-identical to an uncached execution of the same
    /// points: governance never changes what a finished run computes.
    #[test]
    fn duplicate_submission_interleavings_match_uncached_execution(
        order in proptest::collection::vec(0usize..3, 1..10),
        budget_kib in 0u64..3,
    ) {
        use slicc_sim::{Runner, RunRequest, ServiceConfig, SimService};
        use std::sync::Arc;

        let runner = Arc::new(Runner::new(2));
        runner.set_cache_bytes(budget_kib * 1024); // 0 refuses every entry
        let service = SimService::new(
            Arc::clone(&runner),
            ServiceConfig { max_inflight: 2, queue_limit: 64 },
        );
        let points: Vec<RunRequest> = (0..3u64)
            .map(|seed| {
                RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test())
                    .with_seed(seed)
            })
            .collect();
        let reference: Vec<u64> = points
            .iter()
            .map(|p| runner.execute_uncached(p).expect("reference run").metrics.digest())
            .collect();

        let (service, points, reference) = (&service, &points, &reference);
        std::thread::scope(|scope| {
            let handles: Vec<_> = order
                .iter()
                .map(|&which| {
                    scope.spawn(move || {
                        let result = service.submit(&points[which]).expect("submission completes");
                        (which, result.metrics.digest())
                    })
                })
                .collect();
            for h in handles {
                let (which, got) = h.join().expect("client panicked");
                assert_eq!(
                    got, reference[which],
                    "an interleaved submission diverged from uncached execution"
                );
            }
        });
        prop_assert!(runner.stats().cache_bytes <= runner.cache_budget());
        let pressure = service.pressure();
        prop_assert_eq!((pressure.queue_depth, pressure.inflight), (0, 0));
    }
}

/// A checkpoint file seeded with three known records, for the damage
/// properties below.
fn seeded_checkpoint(tag: &str) -> (std::path::PathBuf, Vec<u8>) {
    use slicc_sim::{Checkpoint, RunRequest, SimConfig};
    use slicc_trace::{TraceScale, Workload};
    let path = std::env::temp_dir()
        .join(format!("slicc-prop-{tag}-{}-{:x}.ckpt", std::process::id(), rand_suffix()));
    let result = RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test())
        .try_execute()
        .expect("tiny run completes");
    let (mut ckpt, _, _) = Checkpoint::open(&path).expect("fresh checkpoint opens");
    for key in 1..=3u64 {
        ckpt.append(key, &result).expect("append succeeds");
    }
    drop(ckpt);
    let bytes = std::fs::read(&path).expect("checkpoint readable");
    (path, bytes)
}

fn rand_suffix() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

proptest! {
    // Each case re-simulates a tiny point to seed the file: keep the
    // case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating a checkpoint anywhere must never panic, and must load
    /// a prefix of the originally appended keys.
    #[test]
    fn truncated_checkpoints_load_a_valid_prefix(frac in 0.0f64..1.0) {
        use slicc_sim::Checkpoint;
        let (path, pristine) = seeded_checkpoint("trunc");
        let cut = (pristine.len() as f64 * frac) as usize;
        std::fs::write(&path, &pristine[..cut]).expect("write damaged file");
        let (_ckpt, entries, load) = Checkpoint::open(&path).expect("recovery must not error");
        let keys: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
        prop_assert!([1u64, 2, 3].starts_with(&keys), "keys {:?} not a prefix", keys);
        prop_assert!(!load.quarantined || cut < 12, "a truncated body never quarantines");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(Checkpoint::quarantine_path(&path));
    }

    /// Flipping any single bit must never panic: the damage either lands
    /// in a record (hash check truncates from there), in the header
    /// (quarantine), or in a length field (scan stops). Loaded keys stay
    /// a prefix; a quarantined file keeps its damaged bytes in the
    /// sidecar.
    #[test]
    fn bit_flipped_checkpoints_never_panic_and_keep_a_prefix(
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        use slicc_sim::Checkpoint;
        let (path, pristine) = seeded_checkpoint("flip");
        let idx = ((pristine.len() - 1) as f64 * byte_frac) as usize;
        let mut damaged = pristine.clone();
        damaged[idx] ^= 1 << bit;
        std::fs::write(&path, &damaged).expect("write damaged file");
        let (_ckpt, entries, load) = Checkpoint::open(&path).expect("recovery must not error");
        let keys: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
        prop_assert!([1u64, 2, 3].starts_with(&keys), "keys {:?} not a prefix", keys);
        if load.quarantined {
            let sidecar = std::fs::read(Checkpoint::quarantine_path(&path)).expect("sidecar");
            prop_assert_eq!(sidecar, damaged, "quarantine must preserve the damaged bytes");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(Checkpoint::quarantine_path(&path));
    }
}
