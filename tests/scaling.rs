//! Scaling gates for the split-step parallel engine (DESIGN.md §13).
//!
//! The contract under test: `point_threads` — and every internal degree
//! of freedom behind it (the core → lane partition, the pacing quantum)
//! — may change only *when* work executes, never *what* it computes.
//! The golden suite pins `point_threads ∈ {1, 2, 4, 8}` to the golden
//! digests; this suite walks the internal knobs through randomized
//! schedules with a hand-rolled SplitMix64 driver (the external
//! `proptest` crate is feature-gated off in this workspace).

use slicc_common::SplitMix64;
use slicc_sim::{Engine, RunSession, SchedulerMode, SimConfig, SimConfigBuilder};
use slicc_trace::{TraceScale, Workload};

/// The sequential reference digest for one mode on the tiny point.
fn sequential_digest(mode: SchedulerMode) -> u64 {
    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    let cfg = SimConfig::tiny_test().with_mode(mode);
    RunSession::new(&spec, &cfg).unwrap().run().unwrap().metrics.digest()
}

/// Random core → shard partitions and random pacing quantum widths must
/// never change digests: the committer fixes every segment's inputs and
/// commit order, so lane placement and dispatch timing are pure
/// scheduling. Each trial draws a fresh partition (arbitrary lane
/// indices — dispatch reduces them modulo the lane count) and a quantum
/// anywhere from lockstep (0) to far beyond any real latency.
#[test]
fn random_partitions_and_quantums_never_change_digests() {
    let mut rng = SplitMix64::new(0x51cc_5ca1e);
    for mode in [SchedulerMode::Baseline, SchedulerMode::SliccSw, SchedulerMode::Steps] {
        let want = sequential_digest(mode);
        let spec = Workload::TpcC1.spec(TraceScale::tiny());
        for trial in 0..8 {
            let point_threads = 2 + rng.next_below(7) as usize; // 2..=8
            let cfg = SimConfigBuilder::tiny_test()
                .mode(mode)
                .point_threads(point_threads)
                .build()
                .unwrap();
            let cores = cfg.cores;
            let mut engine = Engine::try_new(&spec, &cfg).unwrap();
            let partition: Vec<usize> =
                (0..cores).map(|_| rng.next_below(64) as usize).collect();
            let quantum = rng.next_below(2_000);
            engine.set_partition(partition.clone());
            engine.set_quantum(quantum);
            engine.try_execute().unwrap();
            let got = engine.into_metrics().digest();
            assert_eq!(
                got, want,
                "{mode:?} trial {trial}: P={point_threads} quantum={quantum} \
                 partition={partition:?} changed the digest"
            );
        }
    }
}

/// The degenerate schedules: a quantum of zero (only heap-floor cores
/// ever dispatch ahead) and a saturating quantum (every running core is
/// primed the moment it steps) bracket the pacing policy's range.
#[test]
fn extreme_quantums_never_change_digests() {
    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    for mode in [SchedulerMode::Slicc, SchedulerMode::SliccPp] {
        let want = sequential_digest(mode);
        for quantum in [0, u64::MAX] {
            let cfg = SimConfigBuilder::tiny_test().mode(mode).point_threads(4).build().unwrap();
            let mut engine = Engine::try_new(&spec, &cfg).unwrap();
            engine.set_quantum(quantum);
            engine.try_execute().unwrap();
            assert_eq!(
                engine.into_metrics().digest(),
                want,
                "{mode:?}: quantum={quantum} changed the digest"
            );
        }
    }
}

/// Everything-on-one-lane and one-core-per-lane partitions are the
/// contention extremes of the lane queues; both must be invisible in
/// the results.
#[test]
fn degenerate_partitions_never_change_digests() {
    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    let mode = SchedulerMode::SliccSw;
    let want = sequential_digest(mode);
    let cfg = SimConfigBuilder::tiny_test().mode(mode).point_threads(8).build().unwrap();
    let cores = cfg.cores;
    for partition in [vec![0; cores], (0..cores).collect::<Vec<_>>()] {
        let mut engine = Engine::try_new(&spec, &cfg).unwrap();
        engine.set_partition(partition.clone());
        engine.try_execute().unwrap();
        assert_eq!(
            engine.into_metrics().digest(),
            want,
            "partition {partition:?} changed the digest"
        );
    }
}
