//! A literal reconstruction of the paper's Figure 4 scenario.
//!
//! "Threads T1-T5 are scheduled to run on an 8-core system, where T1-T3
//! and T4-T5 execute respectively transactions of the same type. The
//! transactions' footprints are divided into code segments, where each
//! segment fits in the L1-I cache of a single core, but two segments
//! would not fit together. T1 executes the following code segments in
//! order: A-B-C-A."
//!
//! These tests build hand-crafted workloads with exactly that structure
//! and verify the behaviours the figure illustrates: intra-thread reuse
//! (T1 returning to A hits the core that still caches A), inter-thread
//! reuse (T2 reuses the blocks T1 loaded), and collective assembly.

use slicc_sim::{Engine, RunMetrics, RunSession, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, WorkloadBuilder, WorkloadSpec};

/// Runs one point through the session API, panicking on any error (these
/// scenarios are hand-crafted and must always complete).
fn run(spec: &WorkloadSpec, cfg: &SimConfig) -> RunMetrics {
    RunSession::new(spec, cfg).expect("valid config").run().expect("scenario completes").metrics
}

/// Segment size in blocks: fits the 4 KiB (64-block) test L1-I; two do
/// not fit together.
const SEG_BLOCKS: u32 = 48;

/// Builds a workload of `tasks` identical-type threads whose plan loops
/// over `n_segments` segments (A, B, C, ... A, B, C ...), with no data
/// accesses (pure instruction behaviour, as in Figure 4).
fn figure4_workload(tasks: u32, n_segments: usize, loop_iters: u32) -> WorkloadSpec {
    WorkloadBuilder::new("figure4")
        .seed(7)
        .tasks(tasks)
        .segment_blocks(SEG_BLOCKS)
        .txn_type("T", 1.0, n_segments, loop_iters)
        .no_data()
        .build()
}

fn cfg(mode: SchedulerMode) -> SimConfig {
    SimConfig::tiny_test().with_mode(mode)
}

#[test]
fn single_thread_baseline_thrashes_on_abca() {
    // One thread looping A-B-C on one core: every segment revisit misses
    // (the conventional-system half of Figure 4).
    let spec = figure4_workload(1, 3, 4);
    let m = run(&spec, &cfg(SchedulerMode::Baseline));
    assert_eq!(m.completed_threads, 1);
    // With ~3 segments x 24 blocks cycling through a 32-block cache, LRU
    // retains almost nothing across revisits: misses approach one per
    // block visit (2 passes share one fill).
    let visits_blocks = m.i_misses as f64;
    assert!(visits_blocks > 200.0, "expected heavy thrash, got {} misses", m.i_misses);
}

#[test]
fn single_thread_slicc_spreads_footprint_and_reuses_it() {
    // The same thread under SLICC on 16 cores: it spreads A, B, C over
    // idle cores and its revisits hit (intra-thread reuse, t3 in
    // Figure 4).
    let spec = figure4_workload(1, 3, 4);
    let base = run(&spec, &cfg(SchedulerMode::Baseline));
    let slicc = run(&spec, &cfg(SchedulerMode::Slicc));
    assert_eq!(slicc.completed_threads, 1);
    assert!(slicc.migrations > 0, "the thread must migrate");
    // A lone thread is SLICC's weakest case: every core it vacates gets
    // its MC reset (§4.2.1), so returning visits may overwrite useful
    // segments. The benefit is real but modest.
    assert!(
        (slicc.i_misses as f64) < 0.85 * base.i_misses as f64,
        "SLICC should still cut misses: base {} vs slicc {}",
        base.i_misses,
        slicc.i_misses
    );
    // The footprint did spread over several caches.
    assert!(slicc.mean_cores_per_thread > 2.0);
}

#[test]
fn followers_reuse_leader_footprint() {
    // T1-T3 of the same type: once T1 has distributed A-B-C over the
    // collective, T2 and T3 should miss far less than 3x the single
    // thread's misses (inter-thread reuse, t1 in Figure 4).
    let spec1 = figure4_workload(1, 3, 4);
    let spec3 = figure4_workload(3, 3, 4);
    let one = run(&spec1, &cfg(SchedulerMode::Slicc));
    let three = run(&spec3, &cfg(SchedulerMode::Slicc));
    assert_eq!(three.completed_threads, 3);
    // Followers reuse what the leader loaded: per-thread misses must
    // drop below the lone thread's.
    assert!(
        (three.i_misses as f64) / 3.0 < 0.9 * one.i_misses as f64,
        "followers should reuse the leader's blocks: 1 thread {} misses, 3 threads {}",
        one.i_misses,
        three.i_misses
    );
}

#[test]
fn slicc_beats_baseline_on_figure4_pipeline() {
    // The full Figure 4 payoff: many same-type threads, footprint 3x the
    // L1. SLICC must deliver both fewer misses and better performance.
    let spec = figure4_workload(32, 3, 4);
    let base = run(&spec, &cfg(SchedulerMode::Baseline));
    let slicc = run(&spec, &cfg(SchedulerMode::Slicc));
    assert!(
        (slicc.i_misses as f64) < 0.65 * base.i_misses as f64,
        "expected >35% miss reduction: base {} slicc {}",
        base.i_misses,
        slicc.i_misses
    );
    assert!(
        slicc.speedup_over(&base) > 1.0,
        "expected speedup, got {:.3}",
        slicc.speedup_over(&base)
    );
}

#[test]
fn different_type_teams_use_disjoint_cores() {
    // T4-T5 of a second type "benefit as well if they get assigned to a
    // different set of cores". Under SLICC-SW, two medium teams must be
    // placed on different halves.
    let spec = WorkloadBuilder::new("figure4-two-types")
        .seed(7)
        .tasks(20)
        .segment_blocks(SEG_BLOCKS)
        .txn_type("A", 1.0, 3, 4)
        .txn_type("B", 1.0, 3, 4)
        .no_data()
        .build();
    let m = run(&spec, &cfg(SchedulerMode::SliccSw));
    assert_eq!(m.completed_threads, 20);
    // Both types present in a 20-thread mix at ~10 threads each: medium
    // teams on a 16-core machine.
    assert!(m.stray_fraction < 0.5, "most threads should be in teams");
}

#[test]
fn engine_is_deterministic() {
    let spec = figure4_workload(6, 3, 4);
    let a = run(&spec, &cfg(SchedulerMode::Slicc));
    let b = run(&spec, &cfg(SchedulerMode::Slicc));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.i_misses, b.i_misses);
    assert_eq!(a.migrations, b.migrations);
}

#[test]
fn engine_exposes_progress() {
    let spec = figure4_workload(2, 3, 4);
    let config = cfg(SchedulerMode::Slicc);
    let mut engine = Engine::new(&spec, &config);
    engine.execute();
    assert_eq!(engine.completed(), 2);
    let m = engine.into_metrics();
    assert_eq!(m.completed_threads, 2);
}

#[test]
fn mapreduce_like_small_footprint_is_unaffected() {
    // A footprint that fits one L1 must neither migrate much nor slow
    // down (the paper's MapReduce robustness result, §5.6). Like the
    // paper's 300-task MapReduce, the machine is fully loaded: with no
    // idle cores, threads load the kernel locally and never migrate.
    let spec = figure4_workload(32, 1, 60);
    let base = run(&spec, &cfg(SchedulerMode::Baseline));
    let slicc = run(&spec, &cfg(SchedulerMode::Slicc));
    let ratio = slicc.speedup_over(&base);
    assert!(ratio > 0.95, "small footprint must not regress: {ratio:.3}");
}

#[test]
fn trace_scale_tiny_matches_tiny_config_property() {
    // The tiny preset used across the test suite keeps the fits/doesn't
    // fit property against the tiny machine.
    let geom = SimConfig::tiny_test().l1i_geometry();
    let seg = TraceScale::tiny().segment_blocks as u64;
    assert!(seg <= geom.num_blocks());
    assert!(2 * seg > geom.num_blocks());
}
