//! Smoke tests for the `slicc` binary: the CLI must keep exiting 0 with
//! parseable output on a tiny workload, printing real help, and naming the
//! offending option on usage errors.

use std::process::Command;

fn slicc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_slicc"))
}

#[test]
fn tiny_run_exits_zero_with_parseable_output() {
    let out = slicc()
        .args(["--workload", "tpcc1", "--scale", "tiny", "--mode", "slicc", "--tasks", "4"])
        .output()
        .expect("failed to spawn slicc");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("stdout must be UTF-8");

    // Every report line is `key value`; pick out the counters and check
    // they parse as numbers.
    let field = |name: &str| -> String {
        stdout
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("missing '{name}' in output:\n{stdout}"))
            .split_whitespace()
            .nth(1)
            .expect("field has a value")
            .to_string()
    };
    assert_eq!(field("workload"), "TPC-C-1");
    assert_eq!(field("mode"), "SLICC");
    let instructions: u64 = field("instructions").parse().expect("instructions is a number");
    assert!(instructions > 0);
    let cycles: u64 = field("cycles").parse().expect("cycles is a number");
    assert!(cycles > 0);
    let i_mpki: f64 = field("I-MPKI").parse().expect("I-MPKI is a number");
    assert!(i_mpki >= 0.0);
}

#[test]
fn help_exits_zero_and_lists_options() {
    let out = slicc().arg("--help").output().expect("failed to spawn slicc");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for opt in ["--workload", "--mode", "--scale", "--baseline-compare"] {
        assert!(stdout.contains(opt), "help must document {opt}");
    }
}

#[test]
fn unknown_option_exits_two_and_names_it() {
    let out = slicc().arg("--frobnicate").output().expect("failed to spawn slicc");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--frobnicate"), "stderr must name the option, got: {stderr}");
}

#[test]
fn bad_value_exits_two_and_names_the_option() {
    let out = slicc().args(["--tasks", "lots"]).output().expect("failed to spawn slicc");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--tasks"), "stderr must name the option, got: {stderr}");
    assert!(stderr.contains("lots"), "stderr must echo the bad value, got: {stderr}");
}

#[test]
fn exhausted_fuel_exits_one_and_identifies_the_point() {
    let out = slicc()
        .args(["--scale", "tiny", "--tasks", "4", "--fuel-steps", "1"])
        .output()
        .expect("failed to spawn slicc");
    assert_eq!(out.status.code(), Some(1), "a failed point must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("livelock"), "stderr must name the failure mode, got: {stderr}");
    assert!(stderr.contains("key=0x"), "stderr must print the stable key, got: {stderr}");
    assert!(stderr.contains("seed="), "stderr must print the seed, got: {stderr}");
    assert!(stderr.contains("TPC-C-1"), "stderr must name the workload, got: {stderr}");
}

#[test]
fn keep_going_still_reports_the_healthy_point() {
    // The baseline-compare batch is [point, baseline]; with a tiny fuel
    // budget both fail, but --keep-going must attempt both and exit 1.
    let out = slicc()
        .args([
            "--scale",
            "tiny",
            "--tasks",
            "4",
            "--fuel-steps",
            "1",
            "--keep-going",
            "--baseline-compare",
        ])
        .output()
        .expect("failed to spawn slicc");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("livelock"), "stderr must report the failure, got: {stderr}");
}

#[test]
fn checkpoint_roundtrip_serves_the_second_run_from_disk() {
    let path = std::env::temp_dir().join(format!("slicc-cli-ckpt-{}.bin", std::process::id()));
    std::fs::remove_file(&path).ok();
    let args = ["--scale", "tiny", "--tasks", "4", "--checkpoint"];

    let first = slicc()
        .args(args)
        .arg(&path)
        .output()
        .expect("failed to spawn slicc");
    assert!(first.status.success(), "stderr: {}", String::from_utf8_lossy(&first.stderr));

    let second = slicc()
        .args(args)
        .arg(&path)
        .output()
        .expect("failed to spawn slicc");
    assert!(second.status.success(), "stderr: {}", String::from_utf8_lossy(&second.stderr));
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr.contains("1 point(s) loaded"),
        "second run must load the checkpointed point, got: {stderr}"
    );
    // Both runs print identical metrics: the checkpoint round-trips them.
    // (The throughput line carries wall time, which legitimately differs.)
    let metrics_only = |bytes: &[u8]| -> String {
        String::from_utf8_lossy(bytes)
            .lines()
            .filter(|l| !l.starts_with("sim throughput"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        metrics_only(&first.stdout),
        metrics_only(&second.stdout),
        "checkpoint-served metrics must match the fresh run"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn progress_quiet_leaves_stderr_empty() {
    let out = slicc()
        .args(["--scale", "tiny", "--tasks", "4", "--progress", "quiet"])
        .output()
        .expect("failed to spawn slicc");
    assert!(out.status.success());
    assert!(
        out.stderr.is_empty(),
        "--progress quiet must silence stderr, got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn progress_json_emits_one_object_per_line() {
    let out = slicc()
        .args(["--scale", "tiny", "--tasks", "4", "--progress", "json"])
        .output()
        .expect("failed to spawn slicc");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.is_empty(), "--progress json must emit telemetry");
    for line in stderr.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "each telemetry line must be a JSON object, got: {line}"
        );
    }
    assert!(stderr.contains("\"event\": \"batch_started\""), "got: {stderr}");
    assert!(stderr.contains("\"event\": \"point_finished\""), "got: {stderr}");
}

#[cfg(feature = "obs-capture")]
#[test]
fn obs_out_writes_all_three_artifacts() {
    let prefix =
        std::env::temp_dir().join(format!("slicc-cli-obs-{}", std::process::id()));
    let trace = prefix.with_extension("trace.json");
    let csv = prefix.with_extension("intervals.csv");
    let json = prefix.with_extension("intervals.json");
    for p in [&trace, &csv, &json] {
        std::fs::remove_file(p).ok();
    }
    let out = slicc()
        .args(["--scale", "tiny", "--tasks", "4", "--progress", "quiet", "--obs-out"])
        .arg(&prefix)
        .output()
        .expect("failed to spawn slicc");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let trace_body = std::fs::read_to_string(&trace).expect("trace artifact written");
    assert!(trace_body.contains("\"traceEvents\""));
    assert_eq!(
        trace_body.matches('{').count(),
        trace_body.matches('}').count(),
        "trace JSON must balance"
    );
    let csv_body = std::fs::read_to_string(&csv).expect("csv artifact written");
    assert!(csv_body.starts_with("epoch,start_cycle"));
    assert!(csv_body.lines().count() > 1, "series must have at least one epoch");
    let json_body = std::fs::read_to_string(&json).expect("intervals json written");
    assert!(json_body.contains("\"epoch_cycles\""));
    for p in [&trace, &csv, &json] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn baseline_compare_reports_speedup() {
    let out = slicc()
        .args(["--scale", "tiny", "--tasks", "4", "--baseline-compare"])
        .output()
        .expect("failed to spawn slicc");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("speedup"), "missing speedup line:\n{stdout}");
}
