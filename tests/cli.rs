//! Smoke tests for the `slicc` binary: the CLI must keep exiting 0 with
//! parseable output on a tiny workload, printing real help, and naming the
//! offending option on usage errors.

use std::process::Command;

fn slicc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_slicc"))
}

#[test]
fn tiny_run_exits_zero_with_parseable_output() {
    let out = slicc()
        .args(["--workload", "tpcc1", "--scale", "tiny", "--mode", "slicc", "--tasks", "4"])
        .output()
        .expect("failed to spawn slicc");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("stdout must be UTF-8");

    // Every report line is `key value`; pick out the counters and check
    // they parse as numbers.
    let field = |name: &str| -> String {
        stdout
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("missing '{name}' in output:\n{stdout}"))
            .split_whitespace()
            .nth(1)
            .expect("field has a value")
            .to_string()
    };
    assert_eq!(field("workload"), "TPC-C-1");
    assert_eq!(field("mode"), "SLICC");
    let instructions: u64 = field("instructions").parse().expect("instructions is a number");
    assert!(instructions > 0);
    let cycles: u64 = field("cycles").parse().expect("cycles is a number");
    assert!(cycles > 0);
    let i_mpki: f64 = field("I-MPKI").parse().expect("I-MPKI is a number");
    assert!(i_mpki >= 0.0);
}

#[test]
fn help_exits_zero_and_lists_options() {
    let out = slicc().arg("--help").output().expect("failed to spawn slicc");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for opt in ["--workload", "--mode", "--scale", "--baseline-compare"] {
        assert!(stdout.contains(opt), "help must document {opt}");
    }
}

#[test]
fn unknown_option_exits_two_and_names_it() {
    let out = slicc().arg("--frobnicate").output().expect("failed to spawn slicc");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--frobnicate"), "stderr must name the option, got: {stderr}");
}

#[test]
fn bad_value_exits_two_and_names_the_option() {
    let out = slicc().args(["--tasks", "lots"]).output().expect("failed to spawn slicc");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--tasks"), "stderr must name the option, got: {stderr}");
    assert!(stderr.contains("lots"), "stderr must echo the bad value, got: {stderr}");
}

#[test]
fn baseline_compare_reports_speedup() {
    let out = slicc()
        .args(["--scale", "tiny", "--tasks", "4", "--baseline-compare"])
        .output()
        .expect("failed to spawn slicc");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("speedup"), "missing speedup line:\n{stdout}");
}
