//! Integration gates for the observability layer (`slicc-obs`).
//!
//! Pins down the three contracts ISSUE-4 promises:
//!
//! 1. **Invariance** — observing a run never changes what it simulates:
//!    the observed point's `RunMetrics::digest()` equals its unobserved
//!    twin's (and therefore the golden capture).
//! 2. **Reconciliation** — the interval series is an exact decomposition
//!    of the run totals: summing epoch deltas reproduces `RunMetrics`
//!    instructions / misses / migrations with no drift.
//! 3. **Export stability** — the Chrome trace renders deterministically
//!    (byte-identical across runs of the same point) and well-formed.
//!
//! Registered with `required-features = ["obs-capture"]`, so the
//! `--no-default-features` CI lane skips it (there the golden digest
//! check is the gate of interest).

use slicc_sim::{
    chrome_trace_json, ObsConfig, RunError, RunRequest, Runner, SchedulerMode, SimConfig,
    SimConfigBuilder, TraceMeta,
};
use slicc_trace::{TraceScale, Workload};

fn observed_request(mode: SchedulerMode) -> RunRequest {
    RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test().with_mode(mode))
        .with_obs(ObsConfig::disabled().with_events().with_epochs(5_000))
}

#[test]
fn observation_never_changes_simulated_results() {
    for mode in [SchedulerMode::Baseline, SchedulerMode::Slicc, SchedulerMode::Steps] {
        let plain = RunRequest::new(
            Workload::TpcC1,
            TraceScale::tiny(),
            SimConfig::tiny_test().with_mode(mode),
        );
        let observed = observed_request(mode);
        assert_eq!(
            plain.stable_key(),
            observed.stable_key(),
            "obs config must not enter the cache key"
        );
        let plain = plain.try_execute().expect("plain point completes");
        let observed = observed.try_execute().expect("observed point completes");
        assert_eq!(
            plain.metrics.digest(),
            observed.metrics.digest(),
            "[{mode:?}] observing a run must not change what it simulates"
        );
        assert!(plain.obs.is_none(), "unobserved runs carry no observation");
        let obs = observed.obs.as_ref().expect("observed runs carry an observation");
        assert!(!obs.events.is_empty(), "[{mode:?}] the tiny run must record events");
        assert!(obs.series.is_some(), "[{mode:?}] epochs were requested");
    }
}

#[test]
fn interval_series_reconciles_exactly_with_run_metrics() {
    for mode in [SchedulerMode::Slicc, SchedulerMode::SliccSw] {
        let result = observed_request(mode).try_execute().expect("point completes");
        let series = result.obs.as_ref().and_then(|o| o.series.as_ref()).expect("series present");
        let totals = series.totals();
        let m = &result.metrics;
        assert_eq!(totals.instructions, m.instructions, "[{mode:?}] instructions");
        assert_eq!(totals.i_misses, m.i_misses, "[{mode:?}] L1-I misses");
        assert_eq!(totals.d_misses, m.d_misses, "[{mode:?}] L1-D misses");
        assert_eq!(totals.migrations, m.migrations, "[{mode:?}] migrations");
        // Epochs tile the run: contiguous, ending at the makespan.
        let mut prev = 0;
        for e in &series.epochs {
            assert_eq!(e.start_cycle, prev, "[{mode:?}] epochs must be contiguous");
            prev = e.end_cycle;
        }
        assert_eq!(prev, m.cycles, "[{mode:?}] the final epoch closes at the makespan");
    }
}

/// The same exact-decomposition contract with shard lanes live: under
/// `point_threads > 1` the sampler reads the committer's counter mirror
/// (speculated segments are not yet committed when epochs close), and
/// the finish flush reconciles the mirror against the live counters —
/// totals must still match `RunMetrics` with no drift, and the epochs
/// must still tile the makespan.
#[test]
fn interval_series_reconciles_exactly_under_point_threads() {
    for mode in [SchedulerMode::Baseline, SchedulerMode::SliccSw] {
        let cfg = SimConfigBuilder::tiny_test().mode(mode).point_threads(4).build().unwrap();
        let req = RunRequest::new(Workload::TpcC1, TraceScale::tiny(), cfg)
            .with_obs(ObsConfig::disabled().with_events().with_epochs(5_000));
        let result = req.try_execute().expect("point completes");
        let series = result.obs.as_ref().and_then(|o| o.series.as_ref()).expect("series present");
        let totals = series.totals();
        let m = &result.metrics;
        assert_eq!(totals.instructions, m.instructions, "[{mode:?}] instructions");
        assert_eq!(totals.i_misses, m.i_misses, "[{mode:?}] L1-I misses");
        assert_eq!(totals.d_misses, m.d_misses, "[{mode:?}] L1-D misses");
        assert_eq!(totals.migrations, m.migrations, "[{mode:?}] migrations");
        let mut prev = 0;
        for e in &series.epochs {
            assert_eq!(e.start_cycle, prev, "[{mode:?}] epochs must be contiguous");
            prev = e.end_cycle;
        }
        assert_eq!(prev, m.cycles, "[{mode:?}] the final epoch closes at the makespan");
    }
}

#[test]
fn chrome_trace_renders_deterministically_and_well_formed() {
    let render = || {
        let result = observed_request(SchedulerMode::Slicc).try_execute().expect("completes");
        let obs = result.obs.expect("observation present");
        let meta = TraceMeta {
            workload: result.metrics.workload.clone(),
            mode: result.metrics.mode.clone(),
            cores: SimConfig::tiny_test().cores,
        };
        chrome_trace_json(&obs.events, &meta)
    };
    let a = render();
    let b = render();
    assert_eq!(a, b, "the same point must render a byte-identical trace");
    // The writer never emits braces inside strings, so well-formedness
    // reduces to balance (the CLI smoke in ci.sh json-parses a real one).
    assert_eq!(a.matches('{').count(), a.matches('}').count(), "unbalanced braces");
    assert_eq!(a.matches('[').count(), a.matches(']').count(), "unbalanced brackets");
    assert!(a.contains("\"traceEvents\""));
    assert!(a.contains("\"thread_name\""));
    assert_eq!(
        a.matches("\"ph\": \"B\"").count(),
        a.matches("\"ph\": \"E\"").count(),
        "B/E slices must pair"
    );
}

#[test]
fn runner_attaches_observations_to_fresh_points_only() {
    let runner = Runner::new(2);
    let observed = observed_request(SchedulerMode::Slicc);
    let plain = RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test());
    let results = runner.run_all(&[observed, plain]);
    let observed = results[0].as_ref().expect("observed point completes");
    let plain = results[1].as_ref().expect("plain point completes");
    assert!(observed.obs.is_some(), "runner must carry the observation through");
    assert!(plain.obs.is_none());
}

#[test]
fn livelock_snapshot_carries_recent_events_and_series_tail() {
    let req = RunRequest::new(
        Workload::TpcC1,
        TraceScale::tiny(),
        SimConfigBuilder::tiny_test()
            .watchdog_steps(200)
            .build()
            .expect("tiny config with a tight fuel budget is valid"),
    )
    .with_obs(ObsConfig::disabled().with_events().with_epochs(50));
    let runner = Runner::new(1);
    let results = runner.run_all(std::slice::from_ref(&req));
    match &results[0] {
        Err(RunError::Livelock { snapshot, .. }) => {
            assert!(
                !snapshot.recent_events.is_empty(),
                "an observed livelock must ship its recent event window"
            );
            assert!(
                !snapshot.series_tail.is_empty(),
                "an observed livelock must ship its series tail"
            );
        }
        other => panic!("expected Livelock, got {other:?}"),
    }
}
