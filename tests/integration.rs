//! End-to-end integration tests across the whole workspace: workload
//! generation -> full-system simulation -> metrics, for every scheduling
//! mode and every Table-1 workload, at miniature scale.
//!
//! Every run is constructed through the typed [`RunRequest`] entry point
//! (with [`SimConfigBuilder`] for non-preset machines), the same path the
//! CLI and the figure harness use.

use slicc_cache::PolicyKind;
use slicc_sim::{RunMetrics, RunRequest, SchedulerMode, SimConfig, SimConfigBuilder};
use slicc_trace::{TraceScale, Workload};

/// Executes one request and returns its metrics.
fn sim(req: RunRequest) -> RunMetrics {
    req.execute().metrics
}

/// A tiny-machine, tiny-trace request for `workload` under `mode`.
fn tiny(workload: Workload, mode: SchedulerMode) -> RunRequest {
    RunRequest::new(workload, TraceScale::tiny(), SimConfig::tiny_test().with_mode(mode))
}

fn run_tiny(workload: Workload, mode: SchedulerMode) -> RunMetrics {
    sim(tiny(workload, mode))
}

/// The tiny-machine PIF analogue: far more capacity than the whole
/// workload's code, at unchanged latency.
fn tiny_pif_bound() -> SimConfig {
    SimConfigBuilder::tiny_test()
        .l1i_size(256 * 1024)
        .tweak(|c| c.l1i_latency_override = Some(3))
        .build()
        .expect("PIF-bound machine is valid")
}

#[test]
fn every_workload_completes_under_every_mode() {
    for w in Workload::ALL {
        let tasks = w.spec(TraceScale::tiny()).num_tasks;
        for mode in SchedulerMode::ALL {
            let m = run_tiny(w, mode);
            assert_eq!(m.completed_threads, tasks as u64, "{w} under {mode}");
            assert!(m.instructions > 0, "{w} under {mode}");
            assert!(m.cycles > 0, "{w} under {mode}");
            assert_eq!(m.workload, w.name());
            assert_eq!(m.mode, mode.name());
        }
    }
}

#[test]
fn slicc_reduces_instruction_misses_on_oltp() {
    // Full-size machine at the reduced trace scale: the tiny machine's
    // aggregate L1-I is overcommitted by the tiny presets' code and
    // cannot show the effect.
    for w in [Workload::TpcC1, Workload::TpcE] {
        let req = RunRequest::new(w, TraceScale::small(), SimConfig::paper_baseline());
        let base = sim(req.clone());
        let sw = sim(req.with_mode(SchedulerMode::SliccSw));
        assert!(
            sw.i_mpki() < 0.7 * base.i_mpki(),
            "{w}: SLICC-SW should cut I-MPKI by >30%: base {:.1} vs {:.1}",
            base.i_mpki(),
            sw.i_mpki()
        );
        assert!(sw.migrations > 0, "{w}: SLICC-SW must migrate");
    }
}

#[test]
fn instruction_savings_outweigh_data_costs_in_cycles() {
    // §3.3/§5.5: migration costs extra data misses, but instruction
    // misses are the expensive kind — the *cycle* savings must dominate.
    // Measured on the full-size machine at reduced trace scale: the tiny
    // machine's overcommitted aggregate L1-I leaves no margin for the
    // effect (the pre-split-step engine cleared it by under 5%).
    let req = RunRequest::new(Workload::TpcC1, TraceScale::small(), SimConfig::paper_baseline());
    let base = sim(req.clone());
    let sw = sim(req.with_mode(SchedulerMode::SliccSw));
    assert!(sw.d_mpki() >= base.d_mpki(), "migration should not reduce data misses");
    assert!(sw.i_mpki() < base.i_mpki(), "migration must reduce instruction misses");
    let i_saved = base.core_stats.ifetch_stall_cycles.saturating_sub(sw.core_stats.ifetch_stall_cycles);
    let d_cost = sw.core_stats.data_stall_cycles.saturating_sub(base.core_stats.data_stall_cycles);
    assert!(
        i_saved > d_cost,
        "instruction-stall savings ({i_saved} cycles) must outweigh data-stall cost ({d_cost})"
    );
}

#[test]
fn mapreduce_is_practically_unaffected() {
    // §5.6 robustness: a footprint that fits one L1-I neither migrates
    // nor slows down meaningfully. Like the paper's 300-task MapReduce,
    // the machine is loaded (tasks > cores): an underloaded machine
    // tempts SLICC into pointless idle-core spreading during warm-up.
    // The full-size machine at reduced trace scale — the tiny machine's
    // aggregate L1-I is overcommitted even by MapReduce's footprint.
    let base =
        sim(RunRequest::new(Workload::MapReduce, TraceScale::small(), SimConfig::paper_baseline()));
    for mode in [SchedulerMode::Slicc, SchedulerMode::SliccSw] {
        let m = sim(RunRequest::new(
            Workload::MapReduce,
            TraceScale::small(),
            SimConfig::paper_baseline().with_mode(mode),
        ));
        let spd = m.speedup_over(&base);
        assert!((0.85..1.15).contains(&spd), "{mode}: MapReduce speedup {spd:.2} should be ~1.0");
    }
}

#[test]
fn pif_upper_bound_beats_baseline_on_oltp() {
    // Enough tasks that cold misses amortize and the PIF bound shines.
    let base = sim(tiny(Workload::TpcC1, SchedulerMode::Baseline).with_tasks(64));
    let pif = sim(
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), tiny_pif_bound()).with_tasks(64),
    );
    assert!(pif.i_mpki() < 0.4 * base.i_mpki(), "PIF model should nearly eliminate I-misses");
    assert!(pif.speedup_over(&base) > 1.1);
}

#[test]
fn next_line_prefetch_reduces_misses_but_less_than_pif() {
    let base = sim(tiny(Workload::TpcC1, SchedulerMode::Baseline).with_tasks(64));
    let nl = sim(
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test().with_next_line(1))
            .with_tasks(64),
    );
    assert!(nl.i_mpki() < base.i_mpki(), "next-line should cover some sequential misses");
    let pif = sim(
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), tiny_pif_bound()).with_tasks(64),
    );
    assert!(pif.i_mpki() < nl.i_mpki(), "the PIF bound beats next-line");
}

#[test]
fn every_replacement_policy_runs_and_stays_sane() {
    let tasks = Workload::TpcC1.spec(TraceScale::tiny()).num_tasks;
    let lru = run_tiny(Workload::TpcC1, SchedulerMode::Baseline);
    for policy in PolicyKind::ALL {
        let m = sim(RunRequest::new(
            Workload::TpcC1,
            TraceScale::tiny(),
            SimConfig::tiny_test().with_policy(policy),
        ));
        assert_eq!(m.completed_threads, tasks as u64, "{policy}");
        // No policy should be wildly different from LRU on this trace.
        assert!(
            m.i_mpki() < 2.0 * lru.i_mpki() + 1.0,
            "{policy}: I-MPKI {:.1} vs LRU {:.1}",
            m.i_mpki(),
            lru.i_mpki()
        );
    }
}

#[test]
fn runs_are_deterministic_per_mode() {
    for mode in SchedulerMode::ALL {
        let a = run_tiny(Workload::TpcE, mode);
        let b = run_tiny(Workload::TpcE, mode);
        assert_eq!(a.cycles, b.cycles, "{mode}");
        assert_eq!(a.i_misses, b.i_misses, "{mode}");
        assert_eq!(a.d_misses, b.d_misses, "{mode}");
        assert_eq!(a.migrations, b.migrations, "{mode}");
        assert_eq!(a.noc.broadcasts, b.noc.broadcasts, "{mode}");
    }
}

#[test]
fn classification_partitions_every_miss() {
    let m = sim(RunRequest::new(
        Workload::TpcC1,
        TraceScale::tiny(),
        SimConfig::tiny_test().with_classification(),
    ));
    let i_bd = m.i_breakdown.expect("classification enabled");
    let d_bd = m.d_breakdown.expect("classification enabled");
    assert_eq!(i_bd.total(), m.i_misses, "every instruction miss classified exactly once");
    assert_eq!(d_bd.total(), m.d_misses, "every data miss classified exactly once");
    // The paper's signature finding: instruction misses are dominated by
    // capacity+conflict (reuse), data misses have a large compulsory part.
    assert!(i_bd.capacity + i_bd.conflict > i_bd.compulsory, "{i_bd:?}");
}

#[test]
fn broadcasts_only_happen_under_slicc() {
    let base = run_tiny(Workload::TpcC1, SchedulerMode::Baseline);
    assert_eq!(base.noc.broadcasts, 0);
    assert_eq!(base.migrations, 0);
    let slicc = run_tiny(Workload::TpcC1, SchedulerMode::Slicc);
    assert!(slicc.noc.broadcasts > 0);
    assert!(slicc.bpki() > 0.0);
}

#[test]
fn accounting_identities_hold() {
    for mode in [SchedulerMode::Baseline, SchedulerMode::SliccSw] {
        let m = run_tiny(Workload::TpcC1, mode);
        assert!(m.i_misses <= m.i_accesses, "{mode}");
        assert!(m.d_misses <= m.d_accesses, "{mode}");
        assert_eq!(
            m.migrations,
            m.matched_migrations + m.idle_migrations,
            "{mode}: migrations split into matched + idle"
        );
        // Busy time can never exceed cores x makespan.
        let busy = m.core_stats.base_cycles
            + m.core_stats.ifetch_stall_cycles
            + m.core_stats.fetch_latency_cycles
            + m.core_stats.data_stall_cycles
            + m.core_stats.migration_cycles;
        assert!(busy <= m.cycles * 16, "{mode}: busy {} > 16 x {}", busy, m.cycles);
    }
}

#[test]
fn slicc_pp_matches_sw_within_band() {
    // Scout detection is 100% accurate on these traces, so Pp should
    // land near SW (it gives up one core to scouting).
    let sw = run_tiny(Workload::TpcE, SchedulerMode::SliccSw);
    let pp = run_tiny(Workload::TpcE, SchedulerMode::SliccPp);
    let ratio = pp.cycles as f64 / sw.cycles as f64;
    assert!((0.7..1.4).contains(&ratio), "Pp/SW cycle ratio {ratio:.2}");
    assert!(pp.i_mpki() < 0.9 * run_tiny(Workload::TpcE, SchedulerMode::Baseline).i_mpki());
}

#[test]
fn threads_spread_across_cores_under_slicc() {
    let base = run_tiny(Workload::TpcC1, SchedulerMode::Baseline);
    assert!(base.mean_cores_per_thread <= 1.01, "baseline threads never move");
    let sw = run_tiny(Workload::TpcC1, SchedulerMode::SliccSw);
    assert!(
        sw.mean_cores_per_thread > 2.0,
        "SLICC threads should spread: {:.2} cores/thread",
        sw.mean_cores_per_thread
    );
}

#[test]
fn stray_fractions_match_workload_structure() {
    // §5.4: "only 3% of TPC-E threads are stray compared to 12% of TPC-C
    // threads" — rare transaction types become strays. At tiny scale the
    // exact numbers differ, but TPC-C must have more strays than
    // MapReduce (single type, zero strays).
    let tpcc = sim(tiny(Workload::TpcC1, SchedulerMode::SliccSw).with_tasks(64));
    let mr = sim(tiny(Workload::MapReduce, SchedulerMode::SliccSw).with_tasks(64));
    assert_eq!(mr.stray_fraction, 0.0, "single-type workload has no strays");
    assert!(tpcc.stray_fraction > 0.0, "TPC-C rare types produce strays");
    assert!(tpcc.stray_fraction < 0.5, "most TPC-C threads are in teams");
}

#[test]
fn bigger_l1i_reduces_misses_but_latency_tempers_speedup() {
    // The Figure 1 trade-off at miniature scale.
    let small = sim(tiny(Workload::TpcC1, SchedulerMode::Baseline).with_tasks(64));
    // 32x the cache at +4 cycles of latency.
    let big_cfg = SimConfigBuilder::tiny_test()
        .l1i_size(128 * 1024)
        .latency_table(slicc_common::LatencyTable::from_entries(vec![(4 * 1024, 3), (128 * 1024, 7)]))
        .build()
        .expect("big-L1I machine is valid");
    let big = sim(
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), big_cfg.clone()).with_tasks(64),
    );
    assert!(big.i_mpki() < 0.5 * small.i_mpki(), "32x capacity must slash misses");
    // And the same cache at the small cache's latency is faster still.
    let ideal_cfg = SimConfigBuilder::from_config(big_cfg)
        .tweak(|c| c.l1i_latency_override = Some(3))
        .build()
        .expect("ideal-latency machine is valid");
    let ideal =
        sim(RunRequest::new(Workload::TpcC1, TraceScale::tiny(), ideal_cfg).with_tasks(64));
    assert!(ideal.cycles <= big.cycles, "removing the latency penalty can only help");
}

#[test]
fn dram_and_l2_see_traffic() {
    let m = run_tiny(Workload::TpcC1, SchedulerMode::Baseline);
    assert!(m.l2.hits + m.l2.misses > 0, "L1 misses must reach the L2");
    assert!(m.dram.total() > 0, "cold misses must reach DRAM");
    assert!(m.noc.unicasts > 0, "miss traffic crosses the NoC");
}

#[test]
fn steps_mode_switches_instead_of_migrating() {
    let m = sim(tiny(Workload::TpcC1, SchedulerMode::Steps).with_tasks(32));
    assert_eq!(m.completed_threads, 32);
    assert!(m.context_switches > 0, "STEPS must context switch");
    assert_eq!(m.migrations, 0, "STEPS never migrates between cores");
    assert_eq!(m.noc.broadcasts, 0, "STEPS never searches remotely");
    // Threads stay on their group's core.
    assert!(m.mean_cores_per_thread <= 1.01);
}

#[test]
fn steps_cuts_instruction_misses_via_time_domain_reuse() {
    let base = sim(tiny(Workload::TpcC1, SchedulerMode::Baseline).with_tasks(32));
    let steps = sim(tiny(Workload::TpcC1, SchedulerMode::Steps).with_tasks(32));
    assert!(
        steps.i_mpki() < 0.8 * base.i_mpki(),
        "teammates must reuse chunks: base {:.1} vs steps {:.1}",
        base.i_mpki(),
        steps.i_mpki()
    );
}

#[test]
fn real_pif_lands_between_baseline_and_its_upper_bound() {
    let base = sim(tiny(Workload::TpcC1, SchedulerMode::Baseline).with_tasks(48));
    let real = sim(
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test().with_real_pif())
            .with_tasks(48),
    );
    let bound = sim(
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), tiny_pif_bound()).with_tasks(48),
    );
    assert!(real.i_mpki() < base.i_mpki(), "real PIF must cover some misses");
    assert!(bound.i_mpki() < real.i_mpki(), "the upper bound beats the real prefetcher");
}

#[test]
fn tlb_statistics_follow_the_paper_pattern() {
    // §5.5: D-TLB misses rise under migration; I-TLB misses stay flat.
    let base = sim(tiny(Workload::TpcC1, SchedulerMode::Baseline).with_tasks(32));
    let sw = sim(tiny(Workload::TpcC1, SchedulerMode::SliccSw).with_tasks(32));
    assert!(sw.d_tlb_misses >= base.d_tlb_misses, "migration re-walks data pages");
    assert!(base.i_tlb_misses > 0 && sw.i_tlb_misses > 0);
}

#[test]
fn disabling_work_stealing_changes_makespan_not_correctness() {
    let no_steal_cfg = SimConfigBuilder::tiny_test()
        .mode(SchedulerMode::SliccSw)
        .work_stealing(false)
        .build()
        .expect("no-steal machine is valid");
    let a = sim(tiny(Workload::TpcC1, SchedulerMode::SliccSw).with_tasks(32));
    let b = sim(
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), no_steal_cfg).with_tasks(32),
    );
    assert_eq!(a.completed_threads, b.completed_threads);
    assert_eq!(a.instructions, b.instructions);
    assert_ne!(a.cycles, b.cycles, "the knob must do something");
}

#[test]
fn transaction_latency_metrics_are_populated() {
    let m = run_tiny(Workload::TpcC1, SchedulerMode::Baseline);
    assert!(m.mean_txn_latency > 0.0);
    assert!(m.p95_txn_latency as f64 >= m.mean_txn_latency * 0.5);
    assert!(m.p95_txn_latency <= m.cycles);
}

#[test]
fn trace_codec_roundtrips_through_the_simulator_workloads() {
    use slicc_trace::{decode_trace, encode_trace};
    let spec = Workload::MapReduce.spec(TraceScale::tiny());
    let t = slicc_common::ThreadId::new(1);
    let mut buf = Vec::new();
    encode_trace(&mut buf, t, spec.thread_type(t), spec.thread_trace(t)).unwrap();
    let decoded = decode_trace(&mut buf.as_slice()).unwrap();
    assert_eq!(decoded.records.len(), spec.thread_trace(t).count());
}
