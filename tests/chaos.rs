//! Chaos drills: every deterministic [`InjectedFault`], with and without
//! a checkpoint attached, must be contained to its own point, must never
//! lose or re-simulate a completed sibling, and must never change the
//! metrics a healthy run produces. The CLI half of the matrix pins the
//! documented exit codes.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use slicc_sim::{
    DeadlineConfig, InjectedFault, ProgressEvent, Reporter, RetryPolicy, RunError, RunRequest,
    Runner, SchedulerMode, SimConfig, SimConfigBuilder,
};
use slicc_trace::{TraceScale, Workload};

/// A fresh scratch path per test, so parallel test threads never share a
/// file.
fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("slicc-chaos-{tag}-{}-{n}.ckpt", std::process::id()))
}

fn healthy_request() -> RunRequest {
    RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test())
        .with_mode(SchedulerMode::Slicc)
}

/// A request carrying `fault`, armed so every fault kind terminates:
/// `StallAt` spins the event loop forever, which only the watchdog (or a
/// deadline) can turn into a typed error.
fn faulty_request(fault: InjectedFault) -> RunRequest {
    let mut builder = SimConfigBuilder::tiny_test().inject_fault(fault);
    if matches!(fault, InjectedFault::StallAt { .. }) {
        builder = builder.watchdog_steps(500);
    }
    let config = builder.build().expect("fault injection is a valid config");
    RunRequest::new(Workload::TpcE, TraceScale::tiny(), config)
}

/// Whether the engine itself fails under `fault` (I/O faults live in the
/// artifact layer; the simulation completes untouched).
fn fails_in_engine(fault: InjectedFault) -> bool {
    matches!(fault, InjectedFault::Panic | InjectedFault::StallAt { .. })
}

/// A reporter that records every event, so tests can assert on warnings
/// and retry narration.
#[derive(Default)]
struct CollectingReporter {
    events: Mutex<Vec<ProgressEvent>>,
}

impl Reporter for CollectingReporter {
    fn report(&self, event: ProgressEvent) {
        self.events.lock().unwrap().push(event);
    }
}

impl CollectingReporter {
    fn warnings(&self) -> Vec<String> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter_map(|e| match e {
                ProgressEvent::Warning { message } => Some(message.clone()),
                _ => None,
            })
            .collect()
    }
}

/// The tentpole matrix: every fault kind, with and without a checkpoint.
/// The faulty point is contained, the healthy sibling always completes
/// with the digest an uninjected run produces, and whatever the
/// checkpoint banked reloads cleanly afterwards.
#[test]
fn every_injected_fault_is_contained_and_healthy_digests_are_unchanged() {
    let reference = Runner::new(1)
        .run(&healthy_request())
        .expect("uninjected reference run completes")
        .metrics
        .digest();

    for fault in InjectedFault::ALL {
        for with_checkpoint in [false, true] {
            let what = format!("fault {fault:?}, checkpoint {with_checkpoint}");
            let runner = Runner::new(1);
            // The matrix injects write failures on purpose; keep the
            // expected degradation warnings out of the test output.
            runner.set_reporter(Arc::new(CollectingReporter::default()));
            let path = temp_path("matrix");
            if with_checkpoint {
                let load = match fault.artifact_fault() {
                    Some(io_fault) => runner.attach_checkpoint_with_io(
                        &path,
                        Arc::new(slicc_common::FaultyIo::new(io_fault)),
                    ),
                    None => runner.attach_checkpoint(&path),
                }
                .expect("fresh checkpoint attaches");
                assert_eq!(load.loaded, 0, "{what}: fresh file starts empty");
            }

            let faulty = faulty_request(fault);
            let batch = [faulty.clone(), healthy_request()];
            let results = runner.run_all(&batch);

            // The healthy sibling must survive every fault kind, with
            // byte-identical metrics.
            let healthy = results[1].as_ref().unwrap_or_else(|e| {
                panic!("{what}: healthy sibling must complete, got {e}")
            });
            assert_eq!(healthy.metrics.digest(), reference, "{what}: digest drifted");

            if fails_in_engine(fault) {
                let err = results[0].as_ref().expect_err("engine fault must surface");
                assert_eq!(err.point().key, faulty.stable_key(), "{what}: wrong point blamed");
                assert_eq!(runner.stats().failed_points, 1, "{what}");
            } else {
                // Artifact-layer faults never touch the simulation.
                let ok = results[0].as_ref().unwrap_or_else(|e| {
                    panic!("{what}: an I/O fault must not fail the simulation, got {e}")
                });
                assert!(ok.metrics.instructions > 0, "{what}");
            }

            if with_checkpoint {
                // Reload with clean I/O: whatever was banked must parse,
                // and nothing healthy may have been silently dropped.
                let resumed = Runner::new(1);
                let load = resumed
                    .attach_checkpoint(&path)
                    .unwrap_or_else(|e| panic!("{what}: reload must parse, got {e}"));
                match fault {
                    // Engine faults leave the artifact layer healthy: the
                    // completed sibling is banked.
                    InjectedFault::Panic | InjectedFault::StallAt { .. } => {
                        assert_eq!(load.loaded, 1, "{what}: the healthy point must be banked");
                        // Resume re-simulates nothing that is banked.
                        let again = resumed.run(&healthy_request()).expect("resumed point");
                        assert!(again.from_cache, "{what}: resume must not re-simulate");
                        assert_eq!(again.metrics.digest(), reference, "{what}");
                    }
                    // The very first append fails and (without retries)
                    // disables checkpointing: the file stays empty but
                    // valid, and nothing in memory was harmed.
                    InjectedFault::IoErrorOnNthWrite { .. } => {
                        assert_eq!(load.loaded, 0, "{what}: checkpointing was disabled");
                        assert!(!load.truncated(), "{what}: a rewound append leaves no torn bytes");
                    }
                    // Every record landed torn: reload drops them all and
                    // heals the log; the points simply re-simulate.
                    InjectedFault::CorruptCheckpointTail => {
                        assert_eq!(load.loaded, 0, "{what}: torn records must not load");
                        assert!(load.truncated(), "{what}: the torn tail is reported");
                        let again = resumed.run(&healthy_request()).expect("re-simulated point");
                        assert!(!again.from_cache, "{what}: torn points re-simulate");
                        assert_eq!(again.metrics.digest(), reference, "{what}");
                    }
                    // Runner-layer faults (a slow consumer holding its
                    // worker slot, allocation pressure) touch neither the
                    // engine nor the artifact layer: both points complete
                    // and bank normally.
                    InjectedFault::SlowConsumer { .. } | InjectedFault::AllocPressure { .. } => {
                        assert_eq!(load.loaded, 2, "{what}: both points must be banked");
                        let again = resumed.run(&healthy_request()).expect("resumed point");
                        assert!(again.from_cache, "{what}: resume must not re-simulate");
                        assert_eq!(again.metrics.digest(), reference, "{what}");
                    }
                }
                let _ = std::fs::remove_file(&path);
                let _ = std::fs::remove_file(slicc_sim::Checkpoint::quarantine_path(&path));
            }
        }
    }
}

#[test]
fn io_retries_recover_the_checkpoint_after_an_injected_write_failure() {
    let path = temp_path("io-retry");
    let runner = Runner::new(1);
    runner.set_retry_policy(RetryPolicy { io_backoff_ms: 1, ..RetryPolicy::standard() });
    let reporter = Arc::new(CollectingReporter::default());
    runner.set_reporter(reporter.clone());
    // Fail the second write: the first point banks cleanly, the second
    // append fails once, backs off, and succeeds on the retry because the
    // failed append rewound the log.
    runner
        .attach_checkpoint_with_io(
            &path,
            Arc::new(slicc_common::FaultyIo::new(slicc_common::IoFault::FailOnNth(2))),
        )
        .expect("fresh checkpoint attaches");
    let results = runner.run_all(&[healthy_request(), healthy_request().with_seed(7)]);
    assert!(results.iter().all(Result::is_ok), "injected I/O error must not fail points");

    let warnings = reporter.warnings();
    assert!(
        warnings.iter().any(|w| w.contains("retrying in")),
        "the retry must be narrated, got {warnings:?}"
    );
    assert!(
        !warnings.iter().any(|w| w.contains("checkpointing disabled")),
        "a recovered write must not disable checkpointing, got {warnings:?}"
    );

    let resumed = Runner::new(1);
    let load = resumed.attach_checkpoint(&path).expect("reload");
    assert_eq!(load.loaded, 2, "both points must be banked after the retry");
    assert!(!load.truncated());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn livelock_retries_bank_the_recovered_point_under_its_original_key() {
    let path = temp_path("livelock-retry");
    let starved = RunRequest::new(
        Workload::TpcC1,
        TraceScale::tiny(),
        SimConfigBuilder::tiny_test().watchdog_steps(1).build().expect("valid config"),
    );
    let runner = Runner::new(1);
    runner.set_retry_policy(RetryPolicy {
        max_attempts: 8,
        fuel_escalation: 1024,
        max_fuel_factor: u64::MAX,
        io_backoff_ms: 0,
    });
    runner.attach_checkpoint(&path).expect("fresh checkpoint attaches");
    let result = runner.run(&starved).expect("escalated retries must recover the point");
    assert!(result.attempts > 1, "one step of fuel cannot succeed first try");

    // The banked record answers for the original starved request.
    let resumed = Runner::new(1);
    let load = resumed.attach_checkpoint(&path).expect("reload");
    assert_eq!(load.loaded, 1);
    let again = resumed.run(&starved).expect("banked point");
    assert!(again.from_cache, "the recovered point must not re-simulate");
    assert_eq!(again.metrics.digest(), result.metrics.digest());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn an_expired_deadline_is_not_banked_and_the_point_recovers_on_resume() {
    let path = temp_path("deadline");
    let runner = Runner::new(2);
    runner.attach_checkpoint(&path).expect("fresh checkpoint attaches");
    let doomed = healthy_request().with_deadline(DeadlineConfig::from_ms(0));
    let sibling = healthy_request().with_seed(9);
    let results = runner.run_all(&[doomed.clone(), sibling.clone()]);
    match &results[0] {
        Err(RunError::DeadlineExceeded { snapshot, .. }) => {
            assert!(snapshot.heap_steps > 0, "the snapshot must show where it stopped");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(results[1].is_ok(), "the sibling must complete while its neighbour times out");

    // Only the completed sibling was banked; the deadline is not part of
    // the point's identity, so the resumed sweep re-simulates exactly the
    // timed-out point — now without a deadline — and succeeds.
    let resumed = Runner::new(1);
    let load = resumed.attach_checkpoint(&path).expect("reload");
    assert_eq!(load.loaded, 1, "a timed-out point must not be banked");
    let recovered = resumed.run(&healthy_request()).expect("undeadlined run completes");
    assert!(!recovered.from_cache, "the timed-out point must re-simulate");
    let cached = resumed.run(&sibling).expect("banked sibling");
    assert!(cached.from_cache, "the completed sibling must not re-simulate");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cancellation_stops_new_work_but_keeps_everything_banked() {
    let path = temp_path("cancel");
    let runner = Runner::new(1);
    runner.attach_checkpoint(&path).expect("fresh checkpoint attaches");
    let done = runner.run(&healthy_request()).expect("pre-cancel point completes");

    runner.cancel_token().cancel();
    let results = runner.run_all(&[healthy_request().with_seed(5), healthy_request().with_seed(6)]);
    for r in &results {
        let err = r.as_ref().expect_err("a cancelled runner must not simulate");
        assert!(err.is_cancellation(), "got {err}");
    }

    let resumed = Runner::new(1);
    let load = resumed.attach_checkpoint(&path).expect("reload");
    assert_eq!(load.loaded, 1, "exactly the pre-cancel point is banked");
    let again = resumed.run(&healthy_request()).expect("banked point");
    assert!(again.from_cache);
    assert_eq!(again.metrics.digest(), done.metrics.digest());
    let _ = std::fs::remove_file(&path);
}

/// Session-level drill: cancellation and deadlines delivered straight
/// through [`slicc_sim::RunSession::control`] abort with diagnostic
/// snapshots, and the abort is contained — the same spec re-runs
/// quiescently afterwards with byte-identical healthy metrics.
#[test]
fn run_session_cancel_and_deadline_drills_abort_cleanly_and_are_contained() {
    use slicc_common::CancelToken;
    use slicc_sim::{RunControl, RunSession, SimError};
    use std::time::Instant;

    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    let cfg = SimConfig::tiny_test();
    let reference = RunSession::new(&spec, &cfg)
        .expect("valid config")
        .run()
        .expect("healthy run completes")
        .metrics
        .digest();

    // Cancel drill: a token cancelled before the run starts must trip on
    // the session's very first control check, with a usable snapshot.
    let cancel = CancelToken::new();
    cancel.cancel();
    let ctrl = RunControl { cancel, deadline: None };
    match RunSession::new(&spec, &cfg).unwrap().control(ctrl).run() {
        Err(SimError::Cancelled(snap)) => {
            assert!(snap.heap_steps > 0, "the snapshot must show where it stopped");
        }
        other => panic!("expected Cancelled, got {:?}", other.err()),
    }

    // Deadline drill: an already-expired deadline aborts the same way.
    let ctrl = RunControl { cancel: CancelToken::new(), deadline: Some(Instant::now()) };
    match RunSession::new(&spec, &cfg).unwrap().control(ctrl).run() {
        Err(SimError::DeadlineExceeded(snap)) => {
            assert!(snap.heap_steps > 0, "the snapshot must show where it stopped");
        }
        other => panic!("expected DeadlineExceeded, got {:?}", other.err()),
    }

    // Containment: the aborted runs leave no residue — a fresh quiescent
    // session still produces the healthy digest.
    let again = RunSession::new(&spec, &cfg).unwrap().run().unwrap().metrics.digest();
    assert_eq!(again, reference, "an aborted session must not change later runs");
}

/// Mid-quantum drill: the same cancel/deadline/livelock matrix with
/// shard lanes live (`point_threads = 4`). An abort can land while
/// speculated segments are outstanding on worker threads; the engine
/// must settle them back — sites, streams, and event rings checked in —
/// before producing the snapshot, and the abort must stay contained:
/// parallel and sequential reruns both still produce the healthy digest.
#[test]
fn parallel_point_aborts_mid_quantum_settle_speculation_and_stay_contained() {
    use slicc_common::CancelToken;
    use slicc_sim::{RunControl, RunSession, SimError};
    use std::time::Instant;

    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    let cfg = SimConfigBuilder::tiny_test()
        .mode(SchedulerMode::SliccSw)
        .point_threads(4)
        .build()
        .expect("parallel config is valid");
    let reference =
        RunSession::new(&spec, &cfg).unwrap().run().unwrap().metrics.digest();

    // Cancel drill: trips on a control check between steps, with lanes
    // holding primed segments that must be settled for the snapshot.
    let cancel = CancelToken::new();
    cancel.cancel();
    let ctrl = RunControl { cancel, deadline: None };
    match RunSession::new(&spec, &cfg).unwrap().control(ctrl).run() {
        Err(SimError::Cancelled(snap)) => {
            assert!(snap.heap_steps > 0, "the snapshot must show where it stopped");
        }
        other => panic!("expected Cancelled, got {:?}", other.err()),
    }

    // Deadline drill: an already-expired deadline aborts the same way.
    let ctrl = RunControl { cancel: CancelToken::new(), deadline: Some(Instant::now()) };
    match RunSession::new(&spec, &cfg).unwrap().control(ctrl).run() {
        Err(SimError::DeadlineExceeded(snap)) => {
            assert!(snap.heap_steps > 0, "the snapshot must show where it stopped");
        }
        other => panic!("expected DeadlineExceeded, got {:?}", other.err()),
    }

    // Livelock drill: a stalled event loop under lanes still trips the
    // watchdog, and the snapshot's thread table is coherent (streams
    // were checked back in, so per-thread progress is readable).
    let stalled = SimConfigBuilder::tiny_test()
        .mode(SchedulerMode::SliccSw)
        .point_threads(4)
        .inject_fault(InjectedFault::StallAt { step: 40 })
        .watchdog_steps(500)
        .build()
        .expect("stall config is valid");
    match RunSession::new(&spec, &stalled).unwrap().run() {
        Err(SimError::Livelock(snap)) => {
            assert!(snap.heap_steps >= 500, "the watchdog must have burned its fuel");
            assert!(snap.hottest_thread.is_some(), "snapshot names the hottest thread");
        }
        other => panic!("expected Livelock, got {:?}", other.err()),
    }

    // Containment: aborted parallel runs leave no residue, sequentially
    // or in parallel.
    let seq = SimConfig::tiny_test().with_mode(SchedulerMode::SliccSw);
    let again_par = RunSession::new(&spec, &cfg).unwrap().run().unwrap().metrics.digest();
    let again_seq = RunSession::new(&spec, &seq).unwrap().run().unwrap().metrics.digest();
    assert_eq!(again_par, reference, "aborted parallel runs must not change later runs");
    assert_eq!(again_seq, reference, "parallel aborts must not leak into sequential runs");
}

// ---------------------------------------------------------------------
// Service drills: cache thrash, stampede storms, overload shedding —
// the ISSUE-7 resource-governance half of the matrix. The invariant
// throughout: governance changes when work is refused or recomputed,
// never what a finished run computes.
// ---------------------------------------------------------------------

use slicc_sim::service::result_weight;
use slicc_sim::{ServiceConfig, SimService};

/// Thrash drill: a byte budget of ~1.5 entries forces every batch to
/// evict. Results must stay digest-identical across passes, the budget
/// must hold after every pass, and evicted points must simply
/// re-simulate as misses.
#[test]
fn cache_thrash_under_a_tiny_byte_budget_is_bounded_and_digest_stable() {
    let points: Vec<RunRequest> =
        (0..6u64).map(|seed| healthy_request().with_seed(seed)).collect();
    let runner = Runner::new(2);
    let reference: Vec<u64> = points
        .iter()
        .map(|p| runner.execute_uncached(p).expect("reference run").metrics.digest())
        .collect();

    // Size the budget off a real entry so the drill survives codec
    // changes: room for one resident result, never two.
    let probe = runner.execute_uncached(&points[0]).expect("probe run");
    let budget = result_weight(&probe) * 3 / 2;
    runner.set_cache_bytes(budget);

    for pass in 0..3 {
        let results = runner.run_all(&points);
        for (i, r) in results.iter().enumerate() {
            let result = r.as_ref().expect("thrashing must not fail points");
            assert_eq!(
                result.metrics.digest(),
                reference[i],
                "pass {pass}: eviction changed point {i}'s result"
            );
        }
        let stats = runner.stats();
        assert!(
            stats.cache_bytes <= budget,
            "pass {pass}: {} resident bytes exceed the {budget} budget",
            stats.cache_bytes
        );
    }
    let stats = runner.stats();
    assert!(stats.cache_evictions > 0, "a 1.5-entry budget must evict: {stats:?}");
    assert!(
        stats.cache_misses > points.len() as u64,
        "evicted points re-simulate on later passes: {stats:?}"
    );
}

/// Stampede drill: N clients storm one identical point while M more
/// submit distinct points, all concurrently. Exactly one simulation per
/// distinct key may run; every client gets the right digest.
#[test]
fn stampede_storm_of_identical_and_distinct_clients_coalesces_to_one_flight() {
    const IDENTICAL_CLIENTS: usize = 6;
    const DISTINCT_CLIENTS: usize = 3;

    let runner = Arc::new(Runner::new(4));
    let service = SimService::new(
        Arc::clone(&runner),
        ServiceConfig { max_inflight: 4, queue_limit: 32 },
    );
    let hot = healthy_request().with_seed(1000);
    let hot_digest = runner.execute_uncached(&hot).expect("reference").metrics.digest();
    let cold: Vec<RunRequest> =
        (0..DISTINCT_CLIENTS as u64).map(|s| healthy_request().with_seed(s)).collect();
    let cold_digests: Vec<u64> = cold
        .iter()
        .map(|p| runner.execute_uncached(p).expect("reference").metrics.digest())
        .collect();

    let (service, hot, cold) = (&service, &hot, &cold);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..IDENTICAL_CLIENTS {
            handles.push(scope.spawn(move || {
                service.submit(hot).expect("hot submission completes").metrics.digest()
            }));
        }
        let cold_handles: Vec<_> = (0..DISTINCT_CLIENTS)
            .map(|i| {
                scope.spawn(move || {
                    service.submit(&cold[i]).expect("cold submission completes").metrics.digest()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("hot client"), hot_digest);
        }
        for (i, h) in cold_handles.into_iter().enumerate() {
            assert_eq!(h.join().expect("cold client"), cold_digests[i]);
        }
    });

    let stats = runner.stats();
    assert_eq!(
        stats.cache_misses,
        1 + DISTINCT_CLIENTS as u64,
        "one flight per distinct key, no matter how many clients: {stats:?}"
    );
    assert_eq!(
        stats.cache_hits + stats.coalesced_hits,
        (IDENTICAL_CLIENTS - 1) as u64,
        "every duplicate hot client is served without simulating: {stats:?}"
    );
}

/// Overload drill: one slot, no queue, and a slow consumer holding the
/// slot. Concurrent arrivals must shed with typed rejections and usable
/// retry hints — and once the slot drains, the same submissions succeed.
#[test]
fn overload_shedding_rejects_typed_and_recovers_after_the_drain() {
    let runner = Arc::new(Runner::new(1));
    let service = SimService::new(
        Arc::clone(&runner),
        ServiceConfig { max_inflight: 1, queue_limit: 0 },
    );
    let slow = faulty_request(InjectedFault::SlowConsumer { delay_ms: 400 });

    let (service, slow) = (&service, &slow);
    std::thread::scope(|scope| {
        let occupant = scope.spawn(move || service.submit(slow));
        while service.pressure().inflight == 0 {
            std::thread::yield_now();
        }
        // Three arrivals while the slot is held: all shed, none simulate.
        for seed in 0..3 {
            let err = service
                .submit(&healthy_request().with_seed(seed))
                .expect_err("no slot and no queue must shed");
            assert!(err.is_overload(), "got {err}");
            match &err {
                RunError::Overloaded { retry_after, .. } => {
                    assert!(*retry_after > Duration::ZERO, "the hint must be usable")
                }
                other => panic!("expected Overloaded, got {other}"),
            }
        }
        occupant.join().expect("occupant thread").expect("the slow point itself completes");
    });

    assert_eq!(runner.stats().shed_points, 3);
    assert_eq!(service.pressure().shed, 3);
    // Recovery: the shed submissions are admitted once the slot frees.
    for seed in 0..3 {
        service
            .submit(&healthy_request().with_seed(seed))
            .expect("post-overload submission completes");
    }
    assert_eq!(runner.stats().failed_points, 0, "shed points never simulated, so never failed");
}

/// Eviction-race drill: the budget is smaller than one entry, so the
/// result a stampede coalesces on can never become resident — waiters
/// must still be served from the flight itself, digest-identical.
#[test]
fn eviction_racing_coalesced_waiters_still_serves_identical_results() {
    let runner = Arc::new(Runner::new(2));
    runner.set_cache_bytes(16); // below any entry's weight: nothing is ever resident
    let service = SimService::new(
        Arc::clone(&runner),
        ServiceConfig { max_inflight: 2, queue_limit: 16 },
    );
    // A slow consumer holds the flight open long enough that every
    // waiter deterministically attaches to it instead of racing a new
    // simulation after the (impossible) cache insert.
    let req = faulty_request(InjectedFault::SlowConsumer { delay_ms: 400 }).with_seed(77);
    let reference = runner.execute_uncached(&req).expect("reference").metrics.digest();

    let (service, req) = (&service, &req);
    std::thread::scope(|scope| {
        let owner = scope.spawn(move || {
            service.submit(req).expect("owner submission completes").metrics.digest()
        });
        while service.pressure().inflight == 0 {
            std::thread::yield_now();
        }
        let waiters: Vec<_> = (0..5)
            .map(|_| {
                scope.spawn(move || {
                    service.submit(req).expect("waiter submission completes").metrics.digest()
                })
            })
            .collect();
        assert_eq!(owner.join().expect("owner"), reference);
        for h in waiters {
            assert_eq!(
                h.join().expect("waiter"),
                reference,
                "a waiter raced an eviction and got a wrong result"
            );
        }
    });

    let stats = runner.stats();
    assert_eq!(stats.cache_bytes, 0, "nothing can be resident under a 16-byte budget");
    assert!(stats.cache_evictions > 0, "the refused insert counts as an eviction: {stats:?}");
    assert_eq!(
        stats.cache_misses, 1, // the uncached reference run is not counted
        "every waiter must coalesce onto the one flight: {stats:?}"
    );
    assert_eq!(stats.coalesced_hits, 5, "{stats:?}");
}

// ---------------------------------------------------------------------
// CLI half of the matrix: documented exit codes, end to end.
// ---------------------------------------------------------------------

fn slicc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_slicc"))
}

#[test]
fn cli_engine_faults_exit_one_and_name_the_failure() {
    let out = slicc()
        .args(["--scale", "tiny", "--inject", "panic", "--progress", "quiet"])
        .output()
        .expect("slicc runs");
    assert_eq!(out.status.code(), Some(1), "an injected panic must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("panicked"), "got: {stderr}");

    let out = slicc()
        .args(["--scale", "tiny", "--inject", "stall:10", "--fuel-steps", "500", "--progress", "quiet"])
        .output()
        .expect("slicc runs");
    assert_eq!(out.status.code(), Some(1), "a stalled event loop must trip the watchdog");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("livelocked"), "got: {stderr}");
}

#[test]
fn cli_expired_deadline_exits_one_with_a_snapshot() {
    let out = slicc()
        .args(["--scale", "tiny", "--deadline-ms", "0", "--progress", "quiet"])
        .output()
        .expect("slicc runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("exceeded its deadline"), "got: {stderr}");
    assert!(stderr.contains("heap steps"), "the snapshot must be printed, got: {stderr}");
}

#[test]
fn cli_zero_queue_limit_sheds_with_a_typed_overload_error() {
    let out = slicc()
        .args(["--scale", "tiny", "--queue-limit", "0", "--progress", "quiet"])
        .output()
        .expect("slicc runs");
    assert_eq!(out.status.code(), Some(1), "a shed point must fail the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("overloaded"), "got: {stderr}");
    assert!(stderr.contains("retry in"), "the retry-after hint must be printed, got: {stderr}");
}

#[test]
fn cli_io_fault_with_retries_recovers_and_the_checkpoint_resumes() {
    let path = temp_path("cli-io");
    let out = slicc()
        .args(["--scale", "tiny", "--inject", "io-error:1", "--retries", "1"])
        .arg("--checkpoint")
        .arg(&path)
        .args(["--progress", "quiet"])
        .output()
        .expect("slicc runs");
    assert_eq!(out.status.code(), Some(0), "an injected checkpoint write failure must not fail the run");

    // The retried append banked the point: a clean re-run serves it from
    // the checkpoint.
    let out = slicc()
        .args(["--scale", "tiny"])
        .arg("--checkpoint")
        .arg(&path)
        .args(["--progress", "plain"])
        .output()
        .expect("slicc re-runs");
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 point(s) loaded"), "got: {stderr}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cli_corrupt_tail_runs_succeed_and_the_resume_heals_the_log() {
    let path = temp_path("cli-tail");
    let out = slicc()
        .args(["--scale", "tiny", "--inject", "corrupt-tail"])
        .arg("--checkpoint")
        .arg(&path)
        .args(["--progress", "quiet"])
        .output()
        .expect("slicc runs");
    assert_eq!(out.status.code(), Some(0), "torn checkpoint records must not fail the run");

    // The resume drops the torn record, reports it, re-simulates, and
    // leaves a healed log behind.
    let out = slicc()
        .args(["--scale", "tiny"])
        .arg("--checkpoint")
        .arg(&path)
        .args(["--progress", "plain"])
        .output()
        .expect("slicc re-runs");
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("corrupt tail bytes discarded"), "got: {stderr}");

    let out = slicc()
        .args(["--scale", "tiny"])
        .arg("--checkpoint")
        .arg(&path)
        .args(["--progress", "plain"])
        .output()
        .expect("slicc runs a third time");
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 point(s) loaded"), "the healed log must serve the point, got: {stderr}");
    assert!(!stderr.contains("discarded"), "got: {stderr}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cli_quarantines_a_foreign_checkpoint_and_still_succeeds() {
    let path = temp_path("cli-quarantine");
    std::fs::write(&path, b"this is not a checkpoint").expect("seed foreign bytes");
    let out = slicc()
        .args(["--scale", "tiny"])
        .arg("--checkpoint")
        .arg(&path)
        .args(["--progress", "plain"])
        .output()
        .expect("slicc runs");
    assert_eq!(out.status.code(), Some(0), "a foreign file must quarantine, not abort");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("quarantined"), "got: {stderr}");
    let sidecar = slicc_sim::Checkpoint::quarantine_path(&path);
    assert_eq!(
        std::fs::read(&sidecar).expect("sidecar preserved"),
        b"this is not a checkpoint",
        "the damaged bytes must survive for post-mortem"
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&sidecar);
}

/// SIGINT drill: interrupt a multi-point sweep after the first point is
/// banked; the process must exit 130 with a resume hint, and the resumed
/// sweep must re-simulate only what is missing.
#[cfg(unix)]
#[test]
fn cli_sigint_flushes_the_checkpoint_and_exits_130() {
    use std::io::Read as _;

    let path = temp_path("cli-sigint");
    // A sweep long enough to interrupt: small scale, baseline compare
    // gives two points; deadline generous so only the signal stops it.
    let mut child = slicc()
        .args(["--scale", "small", "--baseline-compare", "--progress", "quiet"])
        .arg("--checkpoint")
        .arg(&path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("slicc spawns");

    // Wait for the first record to hit the file, then interrupt.
    let header = 12u64; // magic + version
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    let banked = loop {
        let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if len > header {
            break true;
        }
        if std::time::Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(banked, "the first point must reach the checkpoint before the drill times out");
    unsafe {
        assert_eq!(libc_kill(child.id() as i32, 2), 0, "SIGINT delivery failed");
    }
    let status = child.wait().expect("child exits");
    let mut stderr = String::new();
    if let Some(mut pipe) = child.stderr.take() {
        let _ = pipe.read_to_string(&mut stderr);
    }
    // The child may legitimately finish the sweep before the signal lands
    // (exit 0) on a fast machine; the interesting case is the interrupt.
    if status.code() == Some(130) {
        assert!(stderr.contains("resume with --checkpoint"), "got: {stderr}");
    } else {
        assert_eq!(status.code(), Some(0), "unexpected exit, stderr: {stderr}");
    }

    // Whatever was banked resumes cleanly and completes the sweep.
    let out = slicc()
        .args(["--scale", "small", "--baseline-compare", "--progress", "plain"])
        .arg("--checkpoint")
        .arg(&path)
        .output()
        .expect("resume runs");
    assert_eq!(out.status.code(), Some(0), "the resumed sweep must complete");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("point(s) loaded"), "got: {stderr}");
    let _ = std::fs::remove_file(&path);
}

#[cfg(unix)]
extern "C" {
    #[link_name = "kill"]
    fn libc_kill(pid: i32, sig: i32) -> i32;
}
