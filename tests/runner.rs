//! Parallel-runner determinism and fault isolation: fanning a figure's
//! point set across worker threads must not change a single metric, the
//! run cache must deduplicate repeated points, and a faulty point —
//! panicking or livelocking — must not take the batch (or a checkpointed
//! sweep) down with it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use slicc_sim::{
    InjectedFault, RunError, RunRequest, RunResult, Runner, SchedulerMode, ServiceConfig,
    SimConfig, SimConfigBuilder, SimService,
};
use slicc_trace::{TraceScale, Workload};

/// A fresh checkpoint path per test, so parallel test threads never share
/// a file.
fn temp_checkpoint(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("slicc-it-{tag}-{}-{n}.ckpt", std::process::id()))
}

fn expect_ok(result: &Result<RunResult, RunError>) -> &RunResult {
    result.as_ref().unwrap_or_else(|e| panic!("point failed: {e}"))
}

/// A Figure-11-shaped point set at tiny scale: every workload under the
/// baseline and the SLICC variants, plus a repeated baseline point per
/// workload (figures re-use baselines, which is what the cache dedupes).
fn fig11_like_points() -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for w in [Workload::TpcC1, Workload::TpcE, Workload::MapReduce] {
        let base = RunRequest::new(w, TraceScale::tiny(), SimConfig::tiny_test());
        for mode in [
            SchedulerMode::Baseline,
            SchedulerMode::Slicc,
            SchedulerMode::SliccSw,
            SchedulerMode::SliccPp,
        ] {
            reqs.push(base.clone().with_mode(mode));
        }
        // The duplicated baseline every figure re-requests.
        reqs.push(base.clone().with_mode(SchedulerMode::Baseline));
    }
    reqs
}

#[test]
fn parallel_metrics_are_byte_identical_to_serial() {
    let points = fig11_like_points();
    let serial = Runner::new(1).run_all(&points);
    let parallel = Runner::new(4).run_all(&points);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        // RunMetrics has no PartialEq (it carries floats); the Debug
        // rendering covers every field, so byte-identical output means
        // byte-identical metrics.
        assert_eq!(
            format!("{:?}", expect_ok(s).metrics),
            format!("{:?}", expect_ok(p).metrics),
            "point {i} diverged between jobs=1 and jobs=4"
        );
    }
}

#[test]
fn run_cache_deduplicates_shared_points_across_figures() {
    let runner = Runner::new(4);
    let points = fig11_like_points();
    let distinct = 3 * 4; // 3 workloads x 4 modes; the 5th point per workload repeats Baseline
    runner.run_all(&points);
    let after_first = runner.stats();
    assert_eq!(after_first.cache_misses, distinct as u64);
    // The repeated baselines ride along with the fresh simulations in the
    // same batch: they are coalesced duplicates, not memoized hits —
    // nothing was resident when the batch arrived.
    assert_eq!(after_first.coalesced_hits, (points.len() - distinct) as u64);
    assert_eq!(after_first.cache_hits, 0);

    // A second figure re-requesting the same points simulates nothing:
    // now every point is a true memoized hit.
    runner.run_all(&points);
    let after_second = runner.stats();
    assert_eq!(after_second.cache_misses, distinct as u64, "second pass must be fully cached");
    assert_eq!(after_second.cache_hits, points.len() as u64);
    assert_eq!(
        after_second.coalesced_hits, after_first.coalesced_hits,
        "a fully-resident pass coalesces nothing"
    );
    assert_eq!(runner.cached_points(), distinct);
}

#[test]
fn cached_results_match_fresh_ones() {
    let req = RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test())
        .with_mode(SchedulerMode::Slicc);
    let runner = Runner::new(2);
    let fresh = runner.run(&req).expect("fresh run succeeds");
    let cached = runner.run(&req).expect("cached run succeeds");
    assert!(!fresh.from_cache);
    assert!(cached.from_cache);
    assert_eq!(format!("{:?}", fresh.metrics), format!("{:?}", cached.metrics));
}

/// The ISSUE-2 acceptance scenario: a batch containing one panicking and
/// one livelocking point completes the remaining points and reports two
/// typed `RunError`s; a second checkpoint-backed invocation re-simulates
/// only those two points, verified by the cache-hit counters.
#[test]
fn faulty_points_are_isolated_and_checkpoint_resume_skips_completed_ones() {
    let ok1 = RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test());
    let ok2 = ok1.clone().with_mode(SchedulerMode::Slicc);
    let panicking = RunRequest::new(
        Workload::TpcE,
        TraceScale::tiny(),
        SimConfigBuilder::tiny_test()
            .inject_fault(InjectedFault::Panic)
            .build()
            .expect("tiny config with fault injection is valid"),
    );
    let livelocking = RunRequest::new(
        Workload::MapReduce,
        TraceScale::tiny(),
        SimConfigBuilder::tiny_test()
            .watchdog_steps(1)
            .build()
            .expect("tiny config with a 1-step fuel budget is valid"),
    );
    let batch = vec![ok1, ok2, panicking, livelocking];

    let path = temp_checkpoint("acceptance");
    let runner = Runner::new(2);
    let load = runner.attach_checkpoint(&path).expect("fresh checkpoint opens");
    assert_eq!(load.loaded, 0, "a fresh checkpoint starts empty");

    let results = runner.run_all(&batch);
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ok(), "healthy point 0 must survive the faulty neighbours");
    assert!(results[1].is_ok(), "healthy point 1 must survive the faulty neighbours");
    match &results[2] {
        Err(RunError::Panicked { point, payload }) => {
            assert_eq!(point.key, batch[2].stable_key());
            assert!(
                payload.contains("injected fault"),
                "panic payload must carry the message, got: {payload}"
            );
        }
        other => panic!("expected Panicked for point 2, got {other:?}"),
    }
    match &results[3] {
        Err(RunError::Livelock { point, snapshot }) => {
            assert_eq!(point.key, batch[3].stable_key());
            assert!(snapshot.heap_steps > 0, "snapshot must record the consumed fuel");
        }
        other => panic!("expected Livelock for point 3, got {other:?}"),
    }
    let stats = runner.stats();
    assert_eq!(stats.failed_points, 2);
    assert_eq!(stats.cache_misses, 4, "all four points were fresh attempts");

    // A second invocation resumes from the checkpoint: the two completed
    // points come back as cache hits, only the two failed points are
    // re-simulated (and fail the same way — the point is that nothing
    // already banked is re-run).
    let resumed = Runner::new(2);
    let load = resumed.attach_checkpoint(&path).expect("checkpoint reopens");
    assert_eq!(load.loaded, 2, "exactly the two completed points were persisted");
    assert!(!load.truncated(), "a cleanly written checkpoint has no dropped bytes");

    let results = resumed.run_all(&batch);
    assert!(results[0].is_ok() && results[1].is_ok());
    assert!(results[2].is_err() && results[3].is_err());
    assert!(results[0].as_ref().unwrap().from_cache, "point 0 must come from the checkpoint");
    assert!(results[1].as_ref().unwrap().from_cache, "point 1 must come from the checkpoint");
    let stats = resumed.stats();
    assert_eq!(stats.cache_hits, 2, "the checkpointed points are served from cache");
    assert_eq!(stats.cache_misses, 2, "only the failed points are re-simulated");
    assert_eq!(stats.failed_points, 2);

    std::fs::remove_file(&path).ok();
}

/// The ISSUE-7 acceptance stress: thousands of submissions through the
/// service front door — duplicates must coalesce to exactly one
/// simulation per distinct point, every response must carry the right
/// result, and the bounded cache must never exceed its byte budget.
#[test]
fn a_submission_storm_coalesces_to_one_simulation_per_distinct_point() {
    use std::sync::Arc;

    const DISTINCT: usize = 8;
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 250; // 8 x 250 = 2000 submissions

    let runner = Arc::new(Runner::new(4));
    let service = SimService::new(
        Arc::clone(&runner),
        ServiceConfig { max_inflight: 4, queue_limit: CLIENTS * PER_CLIENT },
    );
    let points: Vec<RunRequest> = (0..DISTINCT as u64)
        .map(|seed| {
            RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test())
                .with_seed(seed)
        })
        .collect();
    let reference: Vec<u64> = points
        .iter()
        .map(|p| runner.execute_uncached(p).expect("reference run").metrics.digest())
        .collect();

    let (service, points, reference) = (&service, &points, &reference);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    for i in 0..PER_CLIENT {
                        // Interleave so every point sees concurrent
                        // duplicate submissions from several clients.
                        let which = (i + client) % DISTINCT;
                        let result =
                            service.submit(&points[which]).expect("storm submission completes");
                        assert_eq!(
                            result.metrics.digest(),
                            reference[which],
                            "client {client} got the wrong result for point {which}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("storm client panicked");
        }
    });

    let stats = runner.stats();
    assert_eq!(
        stats.cache_misses, DISTINCT as u64,
        "duplicate in-flight requests must coalesce to exactly one simulation: {stats:?}"
    );
    assert_eq!(
        stats.cache_hits + stats.coalesced_hits,
        (CLIENTS * PER_CLIENT - DISTINCT) as u64,
        "every other submission is served without simulating: {stats:?}"
    );
    assert_eq!(stats.shed_points, 0, "a roomy queue sheds nothing");
    assert!(stats.cache_bytes <= runner.cache_budget(), "the byte budget must hold");
    let pressure = service.pressure();
    assert_eq!((pressure.queue_depth, pressure.inflight), (0, 0), "the storm fully drained");
}

/// Checkpoint-served results carry the same metrics the original
/// simulation produced: round-trip through the on-disk codec and compare
/// the full Debug rendering.
#[test]
fn checkpoint_round_trip_preserves_metrics() {
    let req = RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test())
        .with_mode(SchedulerMode::SliccSw);
    let path = temp_checkpoint("roundtrip");

    let first = Runner::new(1);
    first.attach_checkpoint(&path).expect("fresh checkpoint opens");
    let fresh = first.run(&req).expect("simulation succeeds");

    let second = Runner::new(1);
    let load = second.attach_checkpoint(&path).expect("checkpoint reopens");
    assert_eq!(load.loaded, 1);
    let resumed = second.run(&req).expect("checkpointed run succeeds");
    assert!(resumed.from_cache);
    assert_eq!(format!("{:?}", fresh.metrics), format!("{:?}", resumed.metrics));
    assert_eq!(second.stats().cache_misses, 0, "nothing is re-simulated on resume");

    std::fs::remove_file(&path).ok();
}

/// A checkpoint whose tail was torn mid-record (a crash during `append`)
/// heals on reopen: intact records load, the torn tail is dropped, and the
/// dropped points are simply re-simulated.
#[test]
fn truncated_checkpoint_heals_and_resumes() {
    let a = RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test());
    let b = a.clone().with_mode(SchedulerMode::Slicc);
    let path = temp_checkpoint("truncated");

    let writer = Runner::new(1);
    writer.attach_checkpoint(&path).expect("fresh checkpoint opens");
    writer.run_all(&[a.clone(), b.clone()]).into_iter().for_each(|r| {
        r.expect("healthy points succeed");
    });

    // Tear the last record: drop 3 bytes from the file tail.
    let bytes = std::fs::read(&path).expect("checkpoint readable");
    std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("checkpoint writable");

    let reader = Runner::new(1);
    let load = reader.attach_checkpoint(&path).expect("torn checkpoint still opens");
    assert_eq!(load.loaded, 1, "the intact first record survives");
    assert!(load.truncated(), "the torn tail is reported");

    let results = reader.run_all(&[a, b]);
    assert!(results.iter().all(|r| r.is_ok()));
    let stats = reader.stats();
    assert_eq!(stats.cache_hits, 1, "the surviving record is served from cache");
    assert_eq!(stats.cache_misses, 1, "only the torn-off point is re-simulated");

    std::fs::remove_file(&path).ok();
}
