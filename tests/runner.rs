//! Parallel-runner determinism: fanning a figure's point set across worker
//! threads must not change a single metric, and the run cache must
//! deduplicate repeated points.

use slicc_sim::{RunRequest, Runner, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};

/// A Figure-11-shaped point set at tiny scale: every workload under the
/// baseline and the SLICC variants, plus a repeated baseline point per
/// workload (figures re-use baselines, which is what the cache dedupes).
fn fig11_like_points() -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for w in [Workload::TpcC1, Workload::TpcE, Workload::MapReduce] {
        let base = RunRequest::new(w, TraceScale::tiny(), SimConfig::tiny_test());
        for mode in [
            SchedulerMode::Baseline,
            SchedulerMode::Slicc,
            SchedulerMode::SliccSw,
            SchedulerMode::SliccPp,
        ] {
            reqs.push(base.clone().with_mode(mode));
        }
        // The duplicated baseline every figure re-requests.
        reqs.push(base.clone().with_mode(SchedulerMode::Baseline));
    }
    reqs
}

#[test]
fn parallel_metrics_are_byte_identical_to_serial() {
    let points = fig11_like_points();
    let serial = Runner::new(1).run_all(&points);
    let parallel = Runner::new(4).run_all(&points);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        // RunMetrics has no PartialEq (it carries floats); the Debug
        // rendering covers every field, so byte-identical output means
        // byte-identical metrics.
        assert_eq!(
            format!("{:?}", s.metrics),
            format!("{:?}", p.metrics),
            "point {i} diverged between jobs=1 and jobs=4"
        );
    }
}

#[test]
fn run_cache_deduplicates_shared_points_across_figures() {
    let runner = Runner::new(4);
    let points = fig11_like_points();
    let distinct = 3 * 4; // 3 workloads x 4 modes; the 5th point per workload repeats Baseline
    runner.run_all(&points);
    let after_first = runner.stats();
    assert_eq!(after_first.cache_misses, distinct as u64);
    assert_eq!(after_first.cache_hits, (points.len() - distinct) as u64);

    // A second figure re-requesting the same points simulates nothing.
    runner.run_all(&points);
    let after_second = runner.stats();
    assert_eq!(after_second.cache_misses, distinct as u64, "second pass must be fully cached");
    assert_eq!(runner.cached_points(), distinct);
}

#[test]
fn cached_results_match_fresh_ones() {
    let req = RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test())
        .with_mode(SchedulerMode::Slicc);
    let runner = Runner::new(2);
    let fresh = runner.run(&req);
    let cached = runner.run(&req);
    assert!(!fresh.from_cache);
    assert!(cached.from_cache);
    assert_eq!(format!("{:?}", fresh.metrics), format!("{:?}", cached.metrics));
}
